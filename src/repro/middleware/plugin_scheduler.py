"""Plug-in scheduler interface.

DIET lets "applications [be] given a degree of control over the scheduling
subsystem using plug-in schedulers (available in each agent) that use
information gathered from resources via estimation functions"
(Section II-A).  A plug-in scheduler receives the candidate estimation
vectors collected at one level of the hierarchy and returns them sorted,
best candidate first.  Each agent applies the same plug-in, so the Master
Agent ends up with a globally sorted list from which the first SeD is
elected.

The paper's policies are implemented in :mod:`repro.core.policies` as
subclasses of :class:`PluginScheduler`:
:class:`~repro.core.policies.PowerPolicy` (POWER),
:class:`~repro.core.policies.PerformancePolicy` (PERFORMANCE),
:class:`~repro.core.policies.RandomPolicy` (RANDOM),
:class:`~repro.core.policies.GreenPerfPolicy` (GREENPERF) and the
score-based :class:`~repro.core.policies.GreenSchedulerPolicy`
(GREEN_SCORE); resolve them by name with
:func:`~repro.core.policies.policy_by_name`.  These references are
verified by ``tools/check_doc_links.py`` in CI, so they cannot go stale
when policies move.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.middleware.estimation import EstimationVector
from repro.middleware.requests import ServiceRequest


@dataclass(frozen=True)
class CandidateEntry:
    """One candidate at one hierarchy level: the SeD name and its estimation."""

    server: str
    estimation: EstimationVector

    @classmethod
    def from_vector(cls, vector: EstimationVector) -> "CandidateEntry":
        """Wrap an estimation vector."""
        return cls(server=vector.server, estimation=vector)


class PluginScheduler(ABC):
    """Sorts candidate servers for a request.  Stateless unless documented."""

    #: Human-readable policy name used in reports (Table II column headers).
    name: str = "plugin"

    #: Request-independent total-order sort key, or ``None``.
    #:
    #: Policies whose ranking depends only on the estimation vector (not on
    #: the request or on private mutable state) override this with a method
    #: ``rank_key(entry: CandidateEntry) -> tuple`` returning exactly the
    #: key their :meth:`sort` uses.  The key must end with ``entry.server``
    #: so the order is total; then sorting candidates by ``rank_key`` —
    #: level by level or globally — always yields the same permutation,
    #: which lets :class:`~repro.middleware.ranking.ResidentRanking` keep
    #: the order resident across requests and reposition single servers in
    #: O(log n) instead of re-sorting everything per election.
    rank_key = None

    #: Vectorised metric over free single-core point-study servers, or ``None``.
    #:
    #: Policies that can score the lab point backend's candidate axis in
    #: one numpy expression override this with a method
    #: ``point_metric(request, *, flops, power) -> np.ndarray`` returning a
    #: per-candidate figure such that electing ``min(metric, server_name)``
    #: equals ``sort(request, candidates)[0]``.  Only valid for the point
    #: study's vector shape (every candidate free, waiting time zero, mean
    #: == idle == peak power, total == per-core FLOPS).
    point_metric = None

    @abstractmethod
    def sort(
        self, request: ServiceRequest, candidates: Sequence[CandidateEntry]
    ) -> list[CandidateEntry]:
        """Return ``candidates`` sorted best-first for ``request``.

        Implementations must not mutate the input sequence and must return
        a new list containing exactly the same entries (a permutation).
        """

    def aggregate(
        self,
        request: ServiceRequest,
        partial_rankings: Sequence[Sequence[CandidateEntry]],
    ) -> list[CandidateEntry]:
        """Merge the sorted lists coming from child agents.

        The default aggregation concatenates the children's candidates and
        re-sorts them with the same criterion, which mirrors DIET where the
        same plug-in runs at each agent of the hierarchy.
        """
        merged: list[CandidateEntry] = []
        for ranking in partial_rankings:
            merged.extend(ranking)
        return self.sort(request, merged)


class FirstComeFirstServedScheduler(PluginScheduler):
    """Keeps candidates in collection order.

    This mirrors DIET's default behaviour when no plug-in is installed and
    serves as a neutral baseline in tests: whatever order the hierarchy
    produced is preserved.
    """

    name = "fcfs"

    def sort(
        self, request: ServiceRequest, candidates: Sequence[CandidateEntry]
    ) -> list[CandidateEntry]:
        return list(candidates)
