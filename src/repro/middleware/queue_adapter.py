"""Online face of the queue policy family: a plug-in scheduler adapter.

The queue policies of :mod:`repro.policy.queue` plan over a *queue* —
they decide **when** jobs start.  The middleware driver and the serving
daemon (:mod:`repro.serve`) are per-request: every arrival is placed
immediately on some SeD, so "when" degenerates and only the *election
among servers* remains.  :class:`QueuePlacementAdapter` is that honest
degeneration: it elects the server with the earliest estimated start
(a free core now beats any queue; shorter waiting queues beat longer
ones — exactly the backfill planner's objective applied to one job),
with a per-policy tie-break among equally-early servers:

========  ======================================================
policy    tie-break among equally-early servers
========  ======================================================
FCFS      neutral (server name) — pure earliest-start
EASY      best-fit: fewest free cores, keeping large holes open
          for wide jobs, the spirit of backfilling around a head
CONSERVATIVE  worst-fit: most free cores, spreading load so later
          reservations find room everywhere
DRF       fewest running tasks — the least-loaded server is the
          one-server analogue of the lowest dominant share
========  ======================================================

Batch semantics (reservations, fair-share over users) need the queue
backend of :class:`~repro.lab.session.LabSession`; this adapter exists
so the same policy *names* compose everywhere a plug-in scheduler does
— ``repro serve --policy EASY`` is a valid daemon.  Resolve it through
:func:`repro.core.policies.policy_by_name`, which dispatches queue
names here.

>>> QueuePlacementAdapter("easy").name
'EASY'
>>> QueuePlacementAdapter("nope")
Traceback (most recent call last):
    ...
ValueError: unknown queue policy 'nope' (expected one of: CONSERVATIVE, DRF, EASY, FCFS)
"""

from __future__ import annotations

from typing import Sequence

from repro.middleware.estimation import EstimationTags
from repro.middleware.plugin_scheduler import CandidateEntry, PluginScheduler
from repro.middleware.requests import ServiceRequest
from repro.policy.queue.policies import queue_policy_by_name

__all__ = ["QueuePlacementAdapter"]


def _estimated_start(entry: CandidateEntry) -> float:
    """Earliest estimated start on this server: 0 if a core is free."""
    if entry.estimation.get(EstimationTags.FREE_CORES, 0.0) > 0:
        return 0.0
    return entry.estimation.get(EstimationTags.WAITING_TIME, 0.0)


def _running_tasks(entry: CandidateEntry) -> float:
    total = entry.estimation.get(EstimationTags.TOTAL_CORES, 0.0)
    free = entry.estimation.get(EstimationTags.FREE_CORES, 0.0)
    return max(total - free, 0.0)


class QueuePlacementAdapter(PluginScheduler):
    """Earliest-estimated-start election with a queue-policy tie-break."""

    def __init__(self, policy: str) -> None:
        #: Validates the name and pins the canonical upper-case form.
        self.name = queue_policy_by_name(policy).name

    def _tie_break(self, entry: CandidateEntry) -> float:
        free = entry.estimation.get(EstimationTags.FREE_CORES, 0.0)
        if self.name == "EASY":
            return free  # best-fit: fewest free cores first
        if self.name == "CONSERVATIVE":
            return -free  # worst-fit: most free cores first
        if self.name == "DRF":
            return _running_tasks(entry)  # least-loaded first
        return 0.0  # FCFS: neutral

    def sort(
        self, request: ServiceRequest, candidates: Sequence[CandidateEntry]
    ) -> list[CandidateEntry]:
        return sorted(
            candidates,
            key=lambda entry: (
                _estimated_start(entry),
                self._tie_break(entry),
                entry.server,
            ),
        )
