"""In-process model of the DIET middleware.

DIET (Distributed Interactive Engineering Toolbox) schedules client
requests onto Server Daemons (SeD) through a hierarchy of agents — a
Master Agent (MA) at the top, Local Agents (LA) below — using *estimation
vectors* filled by each SeD and *plug-in schedulers* that sort candidate
servers at every level of the hierarchy (Section II-A of the paper).

This package reproduces those mechanisms faithfully enough that the
paper's green plug-in scheduler can be dropped in unchanged:

* :mod:`repro.middleware.estimation` — estimation vectors and their tags.
* :mod:`repro.middleware.sed` — the Server Daemon bound to a node.
* :mod:`repro.middleware.plugin_scheduler` — the sorting/aggregation
  plug-in interface.
* :mod:`repro.middleware.agents` — Local and Master agents, hierarchical
  candidate collection and election.
* :mod:`repro.middleware.client` — the client-side request API.
* :mod:`repro.middleware.hierarchy` — helpers building an agent hierarchy
  from a platform description.
* :mod:`repro.middleware.driver` — the simulation driver that executes
  elected requests on the platform and accounts time and energy.
"""

from repro.middleware.agents import Agent, LocalAgent, MasterAgent
from repro.middleware.client import Client
from repro.middleware.driver import MiddlewareSimulation, SimulationResult
from repro.middleware.estimation import EstimationTags, EstimationVector
from repro.middleware.hierarchy import build_hierarchy
from repro.middleware.plugin_scheduler import (
    CandidateEntry,
    FirstComeFirstServedScheduler,
    PluginScheduler,
)
from repro.middleware.requests import ServiceRequest, SchedulingOutcome
from repro.middleware.sed import ServerDaemon

__all__ = [
    "Agent",
    "LocalAgent",
    "MasterAgent",
    "Client",
    "MiddlewareSimulation",
    "SimulationResult",
    "EstimationTags",
    "EstimationVector",
    "build_hierarchy",
    "CandidateEntry",
    "FirstComeFirstServedScheduler",
    "PluginScheduler",
    "ServiceRequest",
    "SchedulingOutcome",
    "ServerDaemon",
]
