"""Resident, incrementally-maintained candidate ranking.

The scaling bottleneck of the middleware kernel is that every placement
election used to rebuild and re-sort the full per-server estimation list —
O(requests × servers) even though most node transitions move exactly one
server.  PR 6 made the per-SeD estimation vectors incremental (cached,
invalidated by node power listeners, queue mutation listeners and power
observations); this module makes the *order* incremental too.

:class:`ResidentRanking` keeps the candidate list sorted by the policy's
request-independent :meth:`~repro.middleware.plugin_scheduler.PluginScheduler.rank_key`
in an indexed structure (a binary-searchable sorted list of keys aligned
with the entries).  It subscribes to every SeD's invalidation listeners —
the same triggers that already invalidate the estimation cache — and only
marks the affected server dirty, an O(1) set insert per transition.  The
next election flushes the dirty set: each dirty server is removed from the
order (O(log n) locate) and re-inserted at its new position, then the
resident order is served as-is.  Since ``rank_key`` ends with the server
name the order is total, so the resident order is *identical* to a full
rebuild — the property-based suite (``tests/core/test_ranking_incremental.py``)
proves bit-for-bit equality under random transition streams, and the
golden figures pin it end to end.

The ranking serves exactly what
:meth:`~repro.middleware.agents.Agent.collect_candidates` would have
produced for a hierarchy whose agents all share one ``rank_key`` policy:
available servers only (OFF/BOOTING/FAILED nodes are dropped and re-appear
through their recovery transitions), filtered by ``can_solve``.  Policies
without a ``rank_key`` (RANDOM's per-request noise, GREEN_SCORE's
request-dependent score, the queue-family adapters, FCFS) and hierarchies
with custom estimation functions fall back to the tree walk — the ranking
reports itself unusable rather than guessing.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.middleware.plugin_scheduler import CandidateEntry
from repro.middleware.sed import WILDCARD_SERVICE, ServerDaemon


class ResidentRanking:
    """A policy-sorted server order kept resident across requests."""

    def __init__(self, scheduler, seds: Sequence[ServerDaemon]) -> None:
        key_fn = getattr(scheduler, "rank_key", None)
        if key_fn is None:
            raise ValueError(
                f"policy {getattr(scheduler, 'name', scheduler)!r} has no "
                "request-independent rank_key; use the tree walk instead"
            )
        self._key_fn = key_fn
        self._seds = {sed.name: sed for sed in seds}
        #: Sorted keys, aligned entry list, and each present server's key.
        self._keys: list[tuple] = []
        self._entries: list[CandidateEntry] = []
        self._key_of: dict[str, tuple] = {}
        #: Servers whose vector moved since the last flush (all, initially).
        self._dirty: set[str] = set(self._seds)
        #: Set when a SeD stops being cacheable (custom estimation function):
        #: the ranking can no longer trust its invalidation stream.
        self._unusable = False
        services = {sed.services for sed in seds}
        self._uniform_services: frozenset[str] | None = (
            next(iter(services)) if len(services) == 1 else None
        )
        self._solvable: dict[str, bool] = {}
        for sed in self._seds.values():
            sed.add_invalidation_listener(self._on_invalidate)

    # -- invalidation ------------------------------------------------------------
    def _on_invalidate(self, sed: ServerDaemon) -> None:
        self._dirty.add(sed.name)

    def detach(self) -> None:
        """Unsubscribe from every SeD (when the ranking is replaced)."""
        for sed in self._seds.values():
            sed.remove_invalidation_listener(self._on_invalidate)

    @property
    def dirty_servers(self) -> frozenset[str]:
        """Servers queued for repositioning at the next flush."""
        return frozenset(self._dirty)

    # -- maintenance ---------------------------------------------------------------
    def refresh(self, request) -> None:
        """Reposition every dirty server; O(dirty × log n) key locates.

        ``request`` is forwarded to ``ServerDaemon.estimate`` for interface
        compatibility; cacheable SeDs never read it.
        """
        dirty = self._dirty
        if not dirty:
            return
        keys, entries, key_of = self._keys, self._entries, self._key_of
        for name in dirty:
            old_key = key_of.pop(name, None)
            if old_key is not None:
                index = bisect_left(keys, old_key)
                del keys[index]
                del entries[index]
            sed = self._seds[name]
            if not sed.estimation_cacheable:
                self._unusable = True
                continue
            vector = sed.estimate(request)
            if not vector.available:
                continue  # re-inserted by the recovery/boot transition
            entry = CandidateEntry.from_vector(vector)
            key = self._key_fn(entry)
            index = bisect_left(keys, key)
            keys.insert(index, key)
            entries.insert(index, entry)
            key_of[name] = key
        dirty.clear()

    # -- queries -----------------------------------------------------------------------
    @property
    def usable(self) -> bool:
        """False once any SeD lost its default estimation function."""
        return not self._unusable

    def _solves(self, service: str) -> bool:
        cached = self._solvable.get(service)
        if cached is None:
            assert self._uniform_services is not None
            cached = (
                service in self._uniform_services
                or WILDCARD_SERVICE in self._uniform_services
            )
            self._solvable[service] = cached
        return cached

    def candidates(self, request) -> list[CandidateEntry] | None:
        """The ranked candidates for ``request``, or ``None`` when unusable.

        Returns the resident list itself on the uniform-services fast path;
        callers must treat it as read-only.
        """
        self.refresh(request)
        if self._unusable:
            return None
        if self._uniform_services is not None:
            if self._solves(request.service):
                return self._entries
            return []
        seds = self._seds
        return [
            entry
            for entry in self._entries
            if seds[entry.server].can_solve(request.service)
        ]

    def insort_check(self) -> bool:  # pragma: no cover - debugging helper
        """Whether the resident key list is currently sorted (invariant check)."""
        keys = self._keys
        return all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))


__all__ = ["ResidentRanking"]
