"""Server Daemon (SeD).

A SeD "acts as a service provider exposing functionality through a
standardized computational service interface" (Section II-A).  In this
reproduction each SeD wraps one node, one waiting queue and a power
monitor, and exposes two things to the agent hierarchy:

* the set of services it can solve;
* an estimation vector, filled by a (possibly custom) *estimation
  function* whenever a request arrives.

The default estimation function populates the standard tags of
:class:`~repro.middleware.estimation.EstimationTags`.  The paper's green
scheduler installs additional behaviour simply by reading the power tags —
it does not need to replace the estimation function, but custom functions
are supported because DIET supports them.

Incremental estimation
----------------------
The default estimation function reads only node and queue state, never
the request, so its vector stays valid until that state changes.  Each
SeD therefore *caches* its vector and invalidates it from the three
places the inputs can move — the node's power listeners (every core
acquire/release, power-off, boot and crash/repair transition), the
queue's mutation listeners, and :meth:`ServerDaemon.record_request_power`
(the dynamic power estimate).  A request over a hierarchy of *n* SeDs
re-computes only the vectors whose node changed since the last request —
usually one — instead of reassembling all *n*; since a dirty vector is
recomputed by exactly the same function at the same state, election
results are bit-identical to the always-recompute path (the golden suite
pins this).  Installing a *custom* estimation function disables the cache
for that SeD, because custom functions may read the request.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.infrastructure.node import Node
from repro.middleware.estimation import EstimationTags, EstimationVector
from repro.middleware.requests import ServiceRequest
from repro.simulation.queueing import NodeQueue
from repro.util.stats import RunningStats

EstimationFunction = Callable[["ServerDaemon", ServiceRequest], EstimationVector]

#: Offering this pseudo-service makes a SeD solve *any* request — the
#: open-world mode used by the live placement daemon (:mod:`repro.serve`),
#: whose request stream is not known when the hierarchy is built.
WILDCARD_SERVICE = "*"


class ServerDaemon:
    """One SeD: a node, its queue, its power history and its services."""

    def __init__(
        self,
        node: Node,
        *,
        services: Iterable[str] = ("cpu-burn",),
        queue: NodeQueue | None = None,
        estimation_function: EstimationFunction | None = None,
    ) -> None:
        self.node = node
        self.queue = queue if queue is not None else NodeQueue(node)
        if self.queue.node is not node:
            raise ValueError("queue must be bound to the SeD's node")
        self._services = frozenset(services)
        if not self._services:
            raise ValueError("a SeD must offer at least one service")
        # The default estimation function never reads the request, so its
        # vector can be cached until node/queue/power-history state moves.
        self._cacheable = estimation_function is None
        self._cached_vector: EstimationVector | None = None
        self._estimation_function = estimation_function or default_estimation_function
        #: Per-request energy/duration history feeding the dynamic power estimate.
        self._request_power = RunningStats()
        self._request_energy = RunningStats()
        #: Callbacks fired whenever the cached vector is invalidated — the
        #: resident ranking (:mod:`repro.middleware.ranking`) subscribes
        #: here to mark this SeD dirty in O(1) per transition.
        self._invalidation_listeners: list[Callable[["ServerDaemon"], None]] = []
        if self._cacheable:
            node.add_power_listener(self._on_state_change)
            self.queue.add_listener(self.invalidate_estimation)

    # -- identity ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """SeD name — identical to the node name."""
        return self.node.name

    @property
    def cluster(self) -> str:
        """Cluster of the backing node."""
        return self.node.cluster

    @property
    def services(self) -> frozenset[str]:
        """Services this SeD can solve."""
        return self._services

    def can_solve(self, service: str) -> bool:
        """Whether this SeD offers ``service``.

        A SeD offering :data:`WILDCARD_SERVICE` solves everything.
        """
        return service in self._services or WILDCARD_SERVICE in self._services

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServerDaemon({self.name!r}, services={sorted(self._services)})"

    # -- incremental estimation ---------------------------------------------------
    def _on_state_change(self, node: Node) -> None:
        self.invalidate_estimation()

    def invalidate_estimation(self) -> None:
        """Drop the cached estimation vector (next request recomputes it)."""
        self._cached_vector = None
        for listener in self._invalidation_listeners:
            listener(self)

    def add_invalidation_listener(
        self, listener: Callable[["ServerDaemon"], None]
    ) -> None:
        """Subscribe ``listener(sed)`` to every estimation invalidation.

        Listeners fire on each node power transition, queue mutation,
        power observation and estimation-function swap — the complete set
        of triggers that can move this SeD's estimation vector.
        """
        self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(
        self, listener: Callable[["ServerDaemon"], None]
    ) -> None:
        """Unsubscribe a previously added invalidation listener."""
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    @property
    def estimation_cached(self) -> bool:
        """Whether the current estimation vector is served from the cache."""
        return self._cached_vector is not None

    @property
    def estimation_cacheable(self) -> bool:
        """Whether the default (request-independent) estimation function is active."""
        return self._cacheable

    # -- dynamic power estimation -------------------------------------------------
    def record_request_power(self, mean_power: float, energy: float) -> None:
        """Feed the power observed while serving one past request.

        The paper favours "a second, more dynamic approach, where the energy
        consumed by a server while computing a number of past requests is
        used to compute its average power consumption" (Section III-A).
        """
        self._request_power.add(mean_power)
        self._request_energy.add(energy)
        self.invalidate_estimation()

    @property
    def observed_request_count(self) -> int:
        """Number of past requests whose power has been recorded."""
        return self._request_power.count

    def dynamic_mean_power(self) -> float:
        """Average power over past requests (W).

        Before any request has completed (the "learning phase" visible in
        Figure 2), the estimate falls back to the node's peak power — a
        conservative figure that lets the scheduler make progress without
        favouring unmeasured machines.
        """
        if self._request_power.count == 0:
            return self.node.spec.peak_power
        return self._request_power.mean

    def mean_energy_per_request(self) -> float:
        """Average energy per past request (J); 0.0 before any completion."""
        return self._request_energy.mean

    # -- estimation ------------------------------------------------------------------
    def set_estimation_function(self, function: EstimationFunction) -> None:
        """Install a custom estimation function (the DIET plug-in hook).

        Custom functions may read the request, so installing one disables
        this SeD's estimation cache: every request recomputes.
        """
        self._estimation_function = function
        self._cacheable = False
        self.invalidate_estimation()

    def estimate(self, request: ServiceRequest) -> EstimationVector:
        """Produce the estimation vector for ``request``.

        With the default estimation function the vector is cached and
        only recomputed after a node transition, queue mutation or power
        observation invalidated it (see module docstring).
        """
        if self._cached_vector is not None:
            return self._cached_vector
        vector = self._estimation_function(self, request)
        vector.validate_required()
        if self._cacheable:
            self._cached_vector = vector
        return vector


def default_estimation_function(
    sed: ServerDaemon, request: ServiceRequest
) -> EstimationVector:
    """The default DIET-like estimation function extended with power tags."""
    node = sed.node
    vector = EstimationVector(server=sed.name, cluster=sed.cluster)
    vector.set(EstimationTags.FLOPS_PER_CORE, node.spec.flops_per_core)
    vector.set(EstimationTags.TOTAL_FLOPS, node.spec.total_flops)
    vector.set(EstimationTags.FREE_CORES, float(node.free_cores))
    vector.set(EstimationTags.TOTAL_CORES, float(node.spec.cores))
    vector.set(EstimationTags.WAITING_TIME, sed.queue.waiting_time_estimate())
    vector.set(EstimationTags.COMPLETED_TASKS, float(node.completed_tasks))
    vector.set(EstimationTags.MEAN_POWER, sed.dynamic_mean_power())
    vector.set(EstimationTags.IDLE_POWER, node.spec.idle_power)
    vector.set(EstimationTags.PEAK_POWER, node.spec.peak_power)
    vector.set(EstimationTags.BOOT_POWER, node.spec.boot_power)
    vector.set(EstimationTags.BOOT_TIME, node.spec.boot_time)
    vector.set(EstimationTags.NODE_AVAILABLE, 1.0 if node.is_available else 0.0)
    return vector
