"""Client-side request API.

A DIET client "uses the DIET infrastructure for remote problem solving"
(Section II-A): it submits a problem description to the Master Agent and
then contacts the elected SeD.  In this reproduction the client is a thin
convenience wrapper that builds :class:`ServiceRequest` objects from tasks
and keeps per-client submission statistics; the actual execution is driven
by :class:`repro.middleware.driver.MiddlewareSimulation`.
"""

from __future__ import annotations

from typing import Sequence

from repro.middleware.agents import MasterAgent
from repro.middleware.requests import SchedulingOutcome, ServiceRequest
from repro.simulation.task import Task
from repro.util.validation import ensure_in_range


class Client:
    """A request-submitting client bound to a Master Agent."""

    def __init__(
        self,
        master: MasterAgent,
        *,
        name: str = "client-0",
        default_preference: float = 0.0,
        keep_outcomes: bool = True,
        include_ranking: bool | None = None,
    ) -> None:
        if not name:
            raise ValueError("client name must be a non-empty string")
        ensure_in_range(default_preference, "default_preference", -1.0, 1.0)
        self.master = master
        self.name = name
        self.default_preference = default_preference
        #: With ``keep_outcomes=False`` only the counters survive: every
        #: outcome retains the full ranked estimation-vector tuple, which
        #: is O(requests × servers) memory nothing in a sweep reads.
        self._keep_outcomes = keep_outcomes
        #: Whether outcomes carry the full ranked estimation-vector tuple.
        #: Defaults to ``keep_outcomes``: a client that drops its outcomes
        #: has nothing that reads the ranking, so the Master Agent skips
        #: materialising the O(servers) tuple per request.
        self._include_ranking = keep_outcomes if include_ranking is None else include_ranking
        self._outcomes: list[SchedulingOutcome] = []
        self._submitted = 0
        self._rejected = 0

    def make_request(
        self,
        task: Task,
        *,
        submitted_at: float | None = None,
        user_preference: float | None = None,
    ) -> ServiceRequest:
        """Build the request describing ``task``.

        ``user_preference`` overrides both the task's preference and the
        client default; otherwise the task preference wins when non-zero,
        falling back to the client default.
        """
        if user_preference is None:
            user_preference = (
                task.user_preference if task.user_preference != 0.0 else self.default_preference
            )
        ensure_in_range(user_preference, "user_preference", -1.0, 1.0)
        return ServiceRequest(
            task=task,
            user_preference=user_preference,
            submitted_at=task.arrival_time if submitted_at is None else submitted_at,
        )

    def submit(
        self,
        task: Task,
        *,
        submitted_at: float | None = None,
        user_preference: float | None = None,
    ) -> SchedulingOutcome:
        """Submit ``task`` to the Master Agent and record the outcome."""
        request = self.make_request(
            task, submitted_at=submitted_at, user_preference=user_preference
        )
        outcome = self.master.submit(request, include_ranking=self._include_ranking)
        self._submitted += 1
        if not outcome.succeeded:
            self._rejected += 1
        if self._keep_outcomes:
            self._outcomes.append(outcome)
        return outcome

    # -- bookkeeping --------------------------------------------------------------
    @property
    def outcomes(self) -> Sequence[SchedulingOutcome]:
        """All outcomes received so far, in submission order.

        Empty when the client was built with ``keep_outcomes=False``.
        """
        return tuple(self._outcomes)

    @property
    def submitted_count(self) -> int:
        """Number of requests submitted."""
        return self._submitted

    @property
    def rejected_count(self) -> int:
        """Number of requests for which no server could be elected."""
        return self._rejected
