"""Simulation driver gluing the middleware to the platform.

:class:`MiddlewareSimulation` executes a workload through the full
scheduling pipeline of the paper:

* request arrivals are events on the discrete-event engine;
* each arrival is propagated through the Master Agent, which returns the
  elected SeD (Section III-A, steps 1–4);
* the task is placed in the elected SeD's queue and starts as soon as a
  core is free on that node (step 5);
* completions feed the SeD's dynamic power estimate, the execution trace
  and the metrics collector;
* an optional wattmeter samples every node at 1 Hz, providing the
  ground-truth energy figures reported in Table II and Figure 5.

Energy attribution
------------------
Each completed task records the node-level power observed when it started
(the quantity the paper's dynamic GreenPerf estimation averages) and a
per-core share of that power integrated over its duration as its marginal
energy.  Platform-level energy totals always come from the wattmeter, so
attribution choices cannot bias the headline results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.infrastructure.platform import Platform
from repro.infrastructure.wattmeter import Wattmeter
from repro.middleware.agents import MasterAgent
from repro.middleware.client import Client
from repro.middleware.requests import SchedulingOutcome, ServiceRequest
from repro.middleware.sed import ServerDaemon
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ExperimentMetrics, MetricsCollector
from repro.simulation.task import Task, TaskExecution, TaskState
from repro.simulation.trace import ExecutionTrace


@dataclass(frozen=True)
class SimulationResult:
    """Everything produced by one simulation run."""

    metrics: ExperimentMetrics
    trace: ExecutionTrace
    energy_by_cluster: Mapping[str, float]
    energy_by_node: Mapping[str, float]
    rejected_tasks: int

    @property
    def makespan(self) -> float:
        """Convenience accessor for the run's makespan (s)."""
        return self.metrics.makespan

    @property
    def total_energy(self) -> float:
        """Convenience accessor for the run's total energy (J)."""
        return self.metrics.total_energy


class MiddlewareSimulation:
    """Drives a workload through the middleware onto a platform."""

    def __init__(
        self,
        platform: Platform,
        master: MasterAgent,
        seds: Mapping[str, ServerDaemon],
        *,
        sample_period: float = 1.0,
        enable_wattmeter: bool = True,
        policy_name: str | None = None,
    ) -> None:
        self.platform = platform
        self.master = master
        self.seds = dict(seds)
        self.engine = SimulationEngine()
        self.trace = ExecutionTrace()
        self.metrics = MetricsCollector(
            policy=policy_name or getattr(master.scheduler, "name", "unknown")
        )
        self.client = Client(master)
        self.wattmeter: Wattmeter | None = None
        if enable_wattmeter:
            self.wattmeter = Wattmeter(platform.nodes, sample_period=sample_period)
        self._rejected = 0
        self._pending_completions = 0

    # -- workload submission -------------------------------------------------------
    def submit_workload(self, tasks: Sequence[Task]) -> None:
        """Schedule the arrival of every task in ``tasks``."""
        for task in tasks:
            self.engine.schedule(
                task.arrival_time,
                self._make_arrival_callback(task),
                label=f"arrival-{task.task_id}",
            )

    def inject_task(self, task: Task) -> None:
        """Submit ``task`` immediately (at the engine's current time).

        Used by closed-loop clients that decide on-the-fly how many requests
        to keep in flight (the adaptive-provisioning experiment).
        """
        self._handle_arrival(task)

    def _make_arrival_callback(self, task: Task):
        def _on_arrival() -> None:
            self._handle_arrival(task)

        return _on_arrival

    # -- event handlers ----------------------------------------------------------------
    def _sample_power(self) -> None:
        if self.wattmeter is not None:
            self.wattmeter.advance_to(self.engine.now)

    def _handle_arrival(self, task: Task) -> None:
        self._sample_power()
        now = self.engine.now
        task.state = TaskState.SUBMITTED
        self.trace.record(
            now,
            ExecutionTrace.TASK_SUBMITTED,
            task_id=task.task_id,
            client=task.client,
        )
        outcome = self.client.submit(task, submitted_at=now)
        self._handle_outcome(task, outcome)

    def _handle_outcome(self, task: Task, outcome: SchedulingOutcome) -> None:
        now = self.engine.now
        if not outcome.succeeded:
            task.state = TaskState.REJECTED
            self._rejected += 1
            self.trace.record(
                now, ExecutionTrace.TASK_REJECTED, task_id=task.task_id
            )
            return
        sed = self.seds[outcome.elected]
        task.state = TaskState.QUEUED
        sed.queue.enqueue(task)
        self.trace.record(
            now,
            ExecutionTrace.TASK_SCHEDULED,
            task_id=task.task_id,
            node=sed.name,
            cluster=sed.cluster,
            candidates=outcome.candidate_names,
        )
        self._try_start(sed)

    def _try_start(self, sed: ServerDaemon) -> None:
        """Start as many queued tasks as the node has free cores."""
        node = sed.node
        while node.is_available and node.free_cores > 0:
            task = sed.queue.pop_next()
            if task is None:
                return
            self._start_task(sed, task)

    def _start_task(self, sed: ServerDaemon, task: Task) -> None:
        now = self.engine.now
        node = sed.node
        node.acquire_core()
        sed.queue.mark_running(task)
        task.state = TaskState.RUNNING
        duration = task.duration_on(node.spec.flops_per_core)
        node_power = node.current_power()
        attributed_power = node_power / max(node.busy_cores, 1)
        self.trace.record(
            now,
            ExecutionTrace.TASK_STARTED,
            task_id=task.task_id,
            node=node.name,
            cluster=node.cluster,
            duration=duration,
        )
        submitted_at = task.arrival_time

        def _on_completion() -> None:
            self._complete_task(
                sed,
                task,
                submitted_at=submitted_at,
                started_at=now,
                node_power=node_power,
                attributed_power=attributed_power,
            )

        self.engine.schedule(
            now + duration, _on_completion, label=f"completion-{task.task_id}"
        )
        self._pending_completions += 1

    def _complete_task(
        self,
        sed: ServerDaemon,
        task: Task,
        *,
        submitted_at: float,
        started_at: float,
        node_power: float,
        attributed_power: float,
    ) -> None:
        self._sample_power()
        now = self.engine.now
        node = sed.node
        duration = now - started_at
        node.release_core(busy_seconds=duration)
        sed.queue.mark_completed(task)
        task.state = TaskState.COMPLETED
        energy = attributed_power * duration
        sed.record_request_power(node_power, energy)
        execution = TaskExecution(
            task_id=task.task_id,
            node=node.name,
            cluster=node.cluster,
            submitted_at=submitted_at,
            started_at=started_at,
            completed_at=now,
            energy=energy,
        )
        self.metrics.record_execution(execution)
        self.trace.record(
            now,
            ExecutionTrace.TASK_COMPLETED,
            task_id=task.task_id,
            node=node.name,
            cluster=node.cluster,
            duration=duration,
            energy=energy,
        )
        self._pending_completions -= 1
        self._try_start(sed)

    # -- execution ------------------------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> SimulationResult:
        """Run the simulation to completion (or ``until``) and summarise it."""
        self.engine.run(until=until, max_events=max_events)
        self._sample_power()
        energy_log = self.wattmeter.log if self.wattmeter is not None else None
        metrics = self.metrics.summarize(energy_log)
        return SimulationResult(
            metrics=metrics,
            trace=self.trace,
            energy_by_cluster=(
                dict(energy_log.energy_by_cluster()) if energy_log is not None else {}
            ),
            energy_by_node=(
                dict(energy_log.energy_by_node()) if energy_log is not None else {}
            ),
            rejected_tasks=self._rejected,
        )

    # -- introspection -----------------------------------------------------------------------
    @property
    def rejected_tasks(self) -> int:
        """Number of tasks rejected because no SeD could serve them."""
        return self._rejected

    @property
    def running_tasks(self) -> int:
        """Number of tasks currently executing."""
        return self._pending_completions
