"""Simulation driver gluing the middleware to the platform.

Experiments do not build this driver by hand: :mod:`repro.lab` is the
assembly layer that composes a platform, a workload, a policy, optional
provisioning and an optional event timeline into one
:class:`MiddlewareSimulation` and runs it.

:class:`MiddlewareSimulation` executes a workload through the full
scheduling pipeline of the paper:

* request arrivals are events on the discrete-event engine;
* each arrival is propagated through the Master Agent, which returns the
  elected SeD (Section III-A, steps 1–4);
* the task is placed in the elected SeD's queue and starts as soon as a
  core is free on that node (step 5);
* completions feed the SeD's dynamic power estimate, the execution trace
  and the metrics collector;
* an event-driven :class:`~repro.infrastructure.energy.EnergyAccountant`
  integrates every node's piecewise-constant power into the ground-truth
  energy figures reported in Table II and Figure 5.

Energy accounting modes
-----------------------
``energy_mode`` selects how platform energy is measured:

``"quantized"`` (default)
    Segment-based accounting that reproduces the seed wattmeter's 1 Hz
    left-Riemann figures exactly, in O(state-changes) time and memory.
``"exact"``
    Analytic integration of the piecewise-constant power (no sampling
    error), also O(state-changes).
``"polling"``
    The legacy :class:`~repro.infrastructure.wattmeter.Wattmeter` loop —
    O(nodes × simulated seconds) — kept as the reference for equivalence
    tests and ``tools/bench_kernel.py``.
``"off"``
    No platform-level accounting (``enable_wattmeter=False`` is the
    backward-compatible spelling); metrics fall back to per-task energy.

Tracing
-------
``trace_level="full"`` (default) records the four lifecycle events of
every task on :attr:`MiddlewareSimulation.trace`.  Sweep workers pass
``trace_level="off"``: million-task replays would otherwise allocate four
dict-payload trace events per task that nothing in the sweep path reads
(debug labels on engine events are skipped too).

Energy attribution
------------------
Each completed task records the node-level power observed when it started
(the quantity the paper's dynamic GreenPerf estimation averages) and a
per-core share of that power integrated over its duration as its marginal
energy.  Platform-level energy totals always come from the accountant, so
attribution choices cannot bias the headline results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.infrastructure.energy import EnergyAccountant, EnergyReadout
from repro.infrastructure.node import NodeState
from repro.infrastructure.platform import Platform
from repro.infrastructure.wattmeter import Wattmeter
from repro.middleware.agents import MasterAgent
from repro.middleware.client import Client
from repro.middleware.requests import SchedulingOutcome
from repro.middleware.sed import ServerDaemon
from repro.simulation.engine import ScheduledEvent, SimulationEngine
from repro.simulation.metrics import ExperimentMetrics, MetricsCollector
from repro.simulation.task import Task, TaskExecution, TaskState
from repro.simulation.trace import ExecutionTrace
from repro.util import phases

#: Valid values of ``MiddlewareSimulation(energy_mode=...)``.
ENERGY_MODES = ("quantized", "exact", "polling", "off")

#: Valid values of ``MiddlewareSimulation(trace_level=...)``.
TRACE_LEVELS = ("full", "off")


@dataclass(frozen=True)
class SimulationResult:
    """Everything produced by one simulation run."""

    metrics: ExperimentMetrics
    trace: ExecutionTrace
    energy_by_cluster: Mapping[str, float]
    energy_by_node: Mapping[str, float]
    rejected_tasks: int
    events_processed: int = 0
    failed_tasks: int = 0

    @property
    def makespan(self) -> float:
        """Convenience accessor for the run's makespan (s)."""
        return self.metrics.makespan

    @property
    def total_energy(self) -> float:
        """Convenience accessor for the run's total energy (J)."""
        return self.metrics.total_energy


class MiddlewareSimulation:
    """Drives a workload through the middleware onto a platform."""

    def __init__(
        self,
        platform: Platform,
        master: MasterAgent,
        seds: Mapping[str, ServerDaemon],
        *,
        sample_period: float = 1.0,
        enable_wattmeter: bool = True,
        policy_name: str | None = None,
        energy_mode: str = "quantized",
        trace_level: str = "full",
        phase_timer: "phases.PhaseTimer | None" = None,
    ) -> None:
        if energy_mode not in ENERGY_MODES:
            raise ValueError(
                f"energy_mode must be one of {ENERGY_MODES}, got {energy_mode!r}"
            )
        if trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"trace_level must be one of {TRACE_LEVELS}, got {trace_level!r}"
            )
        if not enable_wattmeter:
            energy_mode = "off"
        self.platform = platform
        self.master = master
        self.seds = dict(seds)
        #: Per-phase profiling hook.  Explicit timer wins; otherwise the
        #: process-wide active timer (set by ``repro sweep --profile`` and
        #: the benchmarks) is picked up; ``None`` disables attribution.
        self.phase_timer = (
            phase_timer if phase_timer is not None else phases.active_timer()
        )
        master.phase_timer = self.phase_timer
        self.engine = SimulationEngine()
        self.trace = ExecutionTrace()
        self._trace_on = trace_level == "full"
        self.metrics = MetricsCollector(
            policy=policy_name or getattr(master.scheduler, "name", "unknown")
        )
        # Outcome history mirrors the trace: debugging data with an
        # O(requests × servers) footprint (each outcome pins the full
        # ranked estimation-vector tuple), so sweeps drop it too.
        self.client = Client(master, keep_outcomes=self._trace_on)
        self.energy_mode = energy_mode
        self.wattmeter: Wattmeter | None = None
        self.accountant: EnergyAccountant | None = None
        if energy_mode == "polling":
            self.wattmeter = Wattmeter(platform.nodes, sample_period=sample_period)
        elif energy_mode in ("quantized", "exact"):
            engine = self.engine
            self.accountant = EnergyAccountant(
                platform.nodes,
                clock=lambda: engine.now,
                mode=energy_mode,
                sample_period=sample_period,
                phase_timer=self.phase_timer,
            )
        self._rejected = 0
        self._failed = 0
        self._submitted = 0
        self._pending_completions = 0
        #: Per-node map of running tasks to their completion events, so a
        #: node crash can cancel exactly the completions it invalidates.
        self._inflight: dict[str, dict[int, tuple[ScheduledEvent, Task]]] = {
            name: {} for name in self.seds
        }

    @property
    def energy_log(self) -> EnergyReadout | None:
        """The active energy log (segment- or sample-based), if any."""
        if self.accountant is not None:
            return self.accountant.log
        if self.wattmeter is not None:
            return self.wattmeter.log
        return None

    # -- workload submission -------------------------------------------------------
    def submit_workload(self, tasks: Sequence[Task]) -> None:
        """Schedule the arrival of every task in ``tasks``.

        Consecutive tasks sharing an arrival time are folded into one
        batched engine event (:meth:`SimulationEngine.schedule_many`): a
        burst of arrivals at one instant costs a single heap pop instead
        of one per task, while firing order, event counts and scheduling
        decisions stay identical to per-task scheduling.
        """
        trace_on = self._trace_on
        schedule = self.engine.schedule
        schedule_many = self.engine.schedule_many
        handle_arrival = self._handle_arrival

        def flush(group: list[Task]) -> None:
            if len(group) == 1:
                task = group[0]
                schedule(
                    task.arrival_time,
                    handle_arrival,
                    args=(task,),
                    label=f"arrival-{task.task_id}" if trace_on else "",
                )
            else:
                schedule_many(
                    group[0].arrival_time,
                    handle_arrival,
                    group,
                    label=f"arrivals-x{len(group)}" if trace_on else "",
                )

        group: list[Task] = []
        for task in tasks:
            if group and task.arrival_time != group[0].arrival_time:
                flush(group)
                group = []
            group.append(task)
        if group:
            flush(group)

    def inject_task(self, task: Task) -> SchedulingOutcome:
        """Submit ``task`` immediately (at the engine's current time).

        Used by closed-loop clients that decide on-the-fly how many
        requests to keep in flight (the adaptive-provisioning experiment)
        and by the live placement service (:mod:`repro.serve`), which
        needs the returned outcome to answer its caller.
        """
        return self._handle_arrival(task)

    # -- event handlers ----------------------------------------------------------------
    def _sample_power(self) -> None:
        # Only the legacy polling mode needs explicit advancing; the
        # segment accountant is notified by the nodes themselves.
        if self.wattmeter is not None:
            self.wattmeter.advance_to(self.engine.now)

    def _handle_arrival(self, task: Task) -> SchedulingOutcome:
        self._sample_power()
        now = self.engine.now
        self._submitted += 1
        task.state = TaskState.SUBMITTED
        if self._trace_on:
            self.trace.record(
                now,
                ExecutionTrace.TASK_SUBMITTED,
                task_id=task.task_id,
                client=task.client,
            )
        outcome = self.client.submit(task, submitted_at=now)
        self._handle_outcome(task, outcome)
        return outcome

    def _handle_outcome(self, task: Task, outcome: SchedulingOutcome) -> None:
        now = self.engine.now
        if not outcome.succeeded:
            task.state = TaskState.REJECTED
            self._rejected += 1
            if self._trace_on:
                self.trace.record(
                    now, ExecutionTrace.TASK_REJECTED, task_id=task.task_id
                )
            return
        sed = self.seds[outcome.elected]
        task.state = TaskState.QUEUED
        sed.queue.enqueue(task)
        if self._trace_on:
            self.trace.record(
                now,
                ExecutionTrace.TASK_SCHEDULED,
                task_id=task.task_id,
                node=sed.name,
                cluster=sed.cluster,
                candidates=outcome.candidate_names,
            )
        self._try_start(sed)

    def _try_start(self, sed: ServerDaemon) -> None:
        """Start as many queued tasks as the node has free cores."""
        node = sed.node
        while node.is_available and node.free_cores > 0:
            task = sed.queue.pop_next()
            if task is None:
                return
            self._start_task(sed, task)

    def _start_task(self, sed: ServerDaemon, task: Task) -> None:
        now = self.engine.now
        node = sed.node
        node.acquire_core()
        sed.queue.mark_running(task)
        task.state = TaskState.RUNNING
        duration = task.duration_on(node.spec.flops_per_core)
        node_power = node.current_power()
        attributed_power = node_power / max(node.busy_cores, 1)
        if self._trace_on:
            self.trace.record(
                now,
                ExecutionTrace.TASK_STARTED,
                task_id=task.task_id,
                node=node.name,
                cluster=node.cluster,
                duration=duration,
            )
        completion = self.engine.schedule(
            now + duration,
            self._complete_task,
            args=(sed, task, task.arrival_time, now, node_power, attributed_power),
            label=f"completion-{task.task_id}" if self._trace_on else "",
        )
        self._inflight[node.name][task.task_id] = (completion, task)
        self._pending_completions += 1

    def _complete_task(
        self,
        sed: ServerDaemon,
        task: Task,
        submitted_at: float,
        started_at: float,
        node_power: float,
        attributed_power: float,
    ) -> None:
        self._sample_power()
        now = self.engine.now
        node = sed.node
        duration = now - started_at
        node.release_core(busy_seconds=duration)
        sed.queue.mark_completed(task)
        del self._inflight[node.name][task.task_id]
        task.state = TaskState.COMPLETED
        energy = attributed_power * duration
        sed.record_request_power(node_power, energy)
        execution = TaskExecution(
            task_id=task.task_id,
            node=node.name,
            cluster=node.cluster,
            submitted_at=submitted_at,
            started_at=started_at,
            completed_at=now,
            energy=energy,
        )
        self.metrics.record_execution(execution)
        if self._trace_on:
            self.trace.record(
                now,
                ExecutionTrace.TASK_COMPLETED,
                task_id=task.task_id,
                node=node.name,
                cluster=node.cluster,
                duration=duration,
                energy=energy,
            )
        self._pending_completions -= 1
        self._try_start(sed)

    # -- fault injection ---------------------------------------------------------------
    def fail_node(self, name: str, *, requeue: bool = True) -> int:
        """Crash node ``name`` at the engine's current time.

        The crash is atomic from the simulation's point of view:

        * every in-flight completion on the node is cancelled (the work is
          lost — a crashed task contributes no execution record);
        * the node's open power segment is closed at the crash instant by
          the power-listener notification, and the node draws nothing
          until :meth:`recover_node`;
        * in-flight and queued tasks are *displaced*: with
          ``requeue=True`` (default) each goes back through the Master
          Agent — the failed node is no longer electable, so the task
          lands on a surviving node or is rejected when none can serve
          it; with ``requeue=False`` displaced tasks are marked
          ``FAILED`` and counted in :attr:`failed_tasks`.

        Returns the number of displaced tasks.  Failing an
        already-failed node is a no-op returning 0.
        """
        node = self.platform.node(name)
        if node.state is NodeState.FAILED:
            return 0
        self._sample_power()
        now = self.engine.now
        sed = self.seds.get(name)
        displaced: list[Task] = []
        inflight = self._inflight.get(name)
        if inflight:
            for completion, task in inflight.values():
                completion.cancel()
                self._pending_completions -= 1
                if sed is not None:
                    sed.queue.forget_running(task)
                displaced.append(task)
            inflight.clear()
        node.fail(now=now)
        if sed is not None:
            displaced.extend(sed.queue.drain_pending())
        if self._trace_on:
            self.trace.record(
                now, ExecutionTrace.NODE_FAILED, node=name, displaced=len(displaced)
            )
        for task in displaced:
            self._handle_displaced(task, failed_node=name, requeue=requeue)
        return len(displaced)

    def recover_node(self, name: str) -> None:
        """Repair node ``name``: back to ON with all cores idle.

        Idempotent — recovering a node that is not failed does nothing, so
        a recovery event racing a provisioning power-off stays harmless.
        """
        node = self.platform.node(name)
        if node.state is not NodeState.FAILED:
            return
        self._sample_power()
        node.repair()
        if self._trace_on:
            self.trace.record(self.engine.now, ExecutionTrace.NODE_RECOVERED, node=name)
        sed = self.seds.get(name)
        if sed is not None:
            self._try_start(sed)

    def _handle_displaced(self, task: Task, *, failed_node: str, requeue: bool) -> None:
        now = self.engine.now
        if not requeue:
            task.state = TaskState.FAILED
            self._failed += 1
            if self._trace_on:
                self.trace.record(
                    now, ExecutionTrace.TASK_FAILED, task_id=task.task_id, node=failed_node
                )
            return
        task.state = TaskState.SUBMITTED
        if self._trace_on:
            self.trace.record(
                now,
                ExecutionTrace.TASK_REQUEUED,
                task_id=task.task_id,
                failed_node=failed_node,
            )
        outcome = self.client.submit(task, submitted_at=now)
        self._handle_outcome(task, outcome)

    def close(self) -> None:
        """Detach the energy accountant's power listeners from the nodes.

        A simulation subscribes to every node at construction time.  All
        in-repo experiments build a fresh platform per run, so the
        subscription's lifetime matches the platform's; call ``close()``
        when *reusing* one platform across several simulations, so a
        finished simulation's accountant neither pays a callback per
        transition nor mis-stamps segments with its stale clock.
        Idempotent; figures accounted so far stay queryable.
        """
        if self.accountant is not None:
            self.accountant.close(self.engine.now)

    # -- execution ------------------------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> SimulationResult:
        """Run the simulation to completion (or ``until``) and summarise it."""
        timer = self.phase_timer
        if timer is not None:
            # Engine time not claimed by a narrower phase (estimation,
            # scoring, energy) books to "dispatch".
            timer.push("dispatch")
        try:
            self.engine.run(until=until, max_events=max_events)
        finally:
            if timer is not None:
                timer.pop()
        self._sample_power()
        if self.accountant is not None and not self.accountant.closed:
            self.accountant.sync(self.engine.now)
        energy_log = self.energy_log
        metrics = self.metrics.summarize(energy_log)
        return SimulationResult(
            metrics=metrics,
            trace=self.trace,
            energy_by_cluster=(
                dict(energy_log.energy_by_cluster()) if energy_log is not None else {}
            ),
            energy_by_node=(
                dict(energy_log.energy_by_node()) if energy_log is not None else {}
            ),
            rejected_tasks=self._rejected,
            events_processed=self.engine.processed_events,
            failed_tasks=self._failed,
        )

    # -- introspection -----------------------------------------------------------------------
    @property
    def rejected_tasks(self) -> int:
        """Number of tasks rejected because no SeD could serve them."""
        return self._rejected

    @property
    def failed_tasks(self) -> int:
        """Tasks lost to node crashes under ``requeue=False`` semantics."""
        return self._failed

    @property
    def submitted_tasks(self) -> int:
        """Number of task arrivals handled so far (requeues not re-counted)."""
        return self._submitted

    @property
    def in_flight_tasks(self) -> int:
        """Submitted tasks not yet completed, rejected or failed.

        This is the pressure figure closed-loop clients regulate on (the
        adaptive experiment's capacity client tops it up to the candidate
        pool's core count every tick).
        """
        return (
            self._submitted
            - self.metrics.task_count
            - self._rejected
            - self._failed
        )

    @property
    def running_tasks(self) -> int:
        """Number of tasks currently executing."""
        return self._pending_completions
