"""Client requests and scheduling outcomes.

A :class:`ServiceRequest` is what travels down the agent hierarchy: the
problem description (service name, task cost) plus the requesting user's
energy/performance preference.  A :class:`SchedulingOutcome` is what the
Master Agent returns to the client: the elected SeD and the ranked list of
candidates with their estimation vectors (step 4 of the scheduling process
in Section III-A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.middleware.estimation import EstimationVector
from repro.simulation.task import Task

_request_counter = itertools.count()


def _next_request_id() -> int:
    return next(_request_counter)


@dataclass(frozen=True)
class ServiceRequest:
    """A problem submission travelling through the hierarchy.

    Parameters
    ----------
    task:
        The underlying unit of work (cost, client, service name).
    user_preference:
        ``Preference_user`` for this request, in ``[-1, 1]``.  Defaults to
        the task's own preference value.
    submitted_at:
        Simulated submission time (s).
    """

    task: Task
    user_preference: float
    submitted_at: float
    request_id: int = field(default_factory=_next_request_id)

    @classmethod
    def from_task(cls, task: Task, *, submitted_at: float | None = None) -> "ServiceRequest":
        """Wrap a task into a request, inheriting its preference and arrival time."""
        return cls(
            task=task,
            user_preference=task.user_preference,
            submitted_at=task.arrival_time if submitted_at is None else submitted_at,
        )

    @property
    def service(self) -> str:
        """Requested computational service."""
        return self.task.service


@dataclass(frozen=True)
class SchedulingOutcome:
    """Result of propagating one request through the hierarchy.

    ``elected`` is the SeD name chosen to solve the problem (``None`` when
    no server can serve the request — the error case of step 1 in
    Section III-A).  ``ranked_candidates`` preserves the full sorted list
    so clients and experiments can inspect the decision.
    """

    request: ServiceRequest
    elected: str | None
    ranked_candidates: Sequence[EstimationVector] = ()

    @property
    def succeeded(self) -> bool:
        """Whether a server was elected."""
        return self.elected is not None

    @property
    def candidate_names(self) -> tuple[str, ...]:
        """Names of the ranked candidate servers, best first."""
        return tuple(vector.server for vector in self.ranked_candidates)
