"""Building agent hierarchies from platform descriptions.

The paper deploys one Master Agent and twelve SeDs spread over three
clusters (Table I).  The natural DIET topology for such a platform is one
Local Agent per cluster under the Master Agent, with one SeD per node —
that is what :func:`build_hierarchy` produces.  A flat topology (all SeDs
directly under the MA) is also available for small experiments and tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.infrastructure.platform import Platform
from repro.middleware.agents import LocalAgent, MasterAgent
from repro.middleware.plugin_scheduler import PluginScheduler
from repro.middleware.sed import ServerDaemon
from repro.simulation.queueing import QueueSet


def build_hierarchy(
    platform: Platform,
    *,
    scheduler: PluginScheduler | None = None,
    services: Iterable[str] = ("cpu-burn",),
    per_cluster_agents: bool = True,
    queues: QueueSet | None = None,
) -> tuple[MasterAgent, Mapping[str, ServerDaemon]]:
    """Create a Master Agent hierarchy covering every node of ``platform``.

    Parameters
    ----------
    platform:
        The infrastructure to expose through the middleware.
    scheduler:
        Plug-in scheduler installed on every agent (may be replaced later
        with :meth:`~repro.middleware.agents.Agent.set_scheduler`).
    services:
        Services offered by every SeD.
    per_cluster_agents:
        When true (default), one Local Agent per cluster is inserted
        between the MA and the SeDs, mirroring the paper's deployment;
        otherwise all SeDs attach directly to the MA.
    queues:
        Optional pre-built :class:`~repro.simulation.queueing.QueueSet`; when
        given, each SeD is bound to the queue of its node so that the
        middleware and the simulation driver share queue state.

    Returns
    -------
    (master, seds):
        The Master Agent and a mapping from node name to SeD.
    """
    services = tuple(services)
    master = MasterAgent(scheduler=scheduler)
    seds: dict[str, ServerDaemon] = {}

    for cluster in platform.clusters:
        parent = master
        if per_cluster_agents:
            local_agent = LocalAgent(f"la-{cluster.name}", scheduler=scheduler)
            master.add_agent(local_agent)
            parent = local_agent
        for node in cluster:
            queue = queues[node.name] if queues is not None else None
            sed = ServerDaemon(node, services=services, queue=queue)
            parent.add_sed(sed)
            seds[node.name] = sed

    return master, seds
