"""Building agent hierarchies from platform descriptions.

The paper deploys one Master Agent and twelve SeDs spread over three
clusters (Table I).  The natural DIET topology for such a platform is one
Local Agent per cluster under the Master Agent, with one SeD per node —
that is what :func:`build_hierarchy` produces.  A flat topology (all SeDs
directly under the MA) is also available for small experiments and tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.infrastructure.platform import Platform
from repro.middleware.agents import LocalAgent, MasterAgent
from repro.middleware.plugin_scheduler import PluginScheduler
from repro.middleware.sed import ServerDaemon
from repro.simulation.queueing import QueueSet

#: The paper's single CPU-bound service, offered when no workload says otherwise.
DEFAULT_SERVICES = ("cpu-burn",)


def workload_services(tasks: Iterable) -> tuple[str, ...]:
    """The sorted service names a workload requests.

    Synthetic workloads keep the paper's single ``"cpu-burn"`` service
    (also the fallback for an empty workload), while replayed traces —
    whose tasks carry queue/partition-derived service names — stay
    schedulable instead of being rejected wholesale.

    >>> from repro.simulation.task import Task
    >>> workload_services([Task(service="q2"), Task(service="q1"), Task()])
    ('cpu-burn', 'q1', 'q2')
    >>> workload_services([])
    ('cpu-burn',)
    """
    return tuple(sorted({task.service for task in tasks})) or DEFAULT_SERVICES


def build_hierarchy(
    platform: Platform,
    *,
    scheduler: PluginScheduler | None = None,
    services: Iterable[str] | None = None,
    workload: Sequence | None = None,
    per_cluster_agents: bool = True,
    queues: QueueSet | None = None,
) -> tuple[MasterAgent, Mapping[str, ServerDaemon]]:
    """Create a Master Agent hierarchy covering every node of ``platform``.

    Parameters
    ----------
    platform:
        The infrastructure to expose through the middleware.
    scheduler:
        Plug-in scheduler installed on every agent (may be replaced later
        with :meth:`~repro.middleware.agents.Agent.set_scheduler`).
    services:
        Services offered by every SeD.  When omitted, they are derived
        from ``workload`` (every service the workload requests), falling
        back to the paper's single ``"cpu-burn"`` service.
    workload:
        Optional task sequence the hierarchy will serve; only consulted
        when ``services`` is omitted (see :func:`workload_services`).
    per_cluster_agents:
        When true (default), one Local Agent per cluster is inserted
        between the MA and the SeDs, mirroring the paper's deployment;
        otherwise all SeDs attach directly to the MA.
    queues:
        Optional pre-built :class:`~repro.simulation.queueing.QueueSet`; when
        given, each SeD is bound to the queue of its node so that the
        middleware and the simulation driver share queue state.

    Returns
    -------
    (master, seds):
        The Master Agent and a mapping from node name to SeD.
    """
    if services is None:
        services = (
            workload_services(workload) if workload is not None else DEFAULT_SERVICES
        )
    services = tuple(services)
    master = MasterAgent(scheduler=scheduler)
    seds: dict[str, ServerDaemon] = {}

    for cluster in platform.clusters:
        parent = master
        if per_cluster_agents:
            local_agent = LocalAgent(f"la-{cluster.name}", scheduler=scheduler)
            master.add_agent(local_agent)
            parent = local_agent
        for node in cluster:
            queue = queues[node.name] if queues is not None else None
            sed = ServerDaemon(node, services=services, queue=queue)
            parent.add_sed(sed)
            seds[node.name] = sed

    return master, seds
