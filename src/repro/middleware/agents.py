"""Agent hierarchy: Master Agent and Local Agents.

Agents "deployed alone or in a hierarchy, facilitate service location and
invocation interactions between clients and SEDs" (Section II-A).  The
scheduling process reproduced here follows Section III-A:

1. a client issues a request to the Master Agent;
2. the request is propagated down the hierarchy to the SeDs able to solve
   the problem;
3. each SeD fills an estimation vector which travels back up;
4. at each level, the agent sorts the candidates with the plug-in
   scheduler; the Master Agent elects the first SeD of the final ranking;
5. the client contacts the elected SeD.

A *candidate filter* hook on the Master Agent lets the green provisioning
layer (Section III-C) restrict the set of candidate nodes before the
final sorting — that is where the administrator's thresholds and
``Preference_provider`` act.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.middleware.plugin_scheduler import (
    CandidateEntry,
    FirstComeFirstServedScheduler,
    PluginScheduler,
)
from repro.middleware.requests import SchedulingOutcome, ServiceRequest
from repro.middleware.sed import ServerDaemon

#: Hook filtering the candidate entries the Master Agent considers.
CandidateFilter = Callable[[ServiceRequest, Sequence[CandidateEntry]], Sequence[CandidateEntry]]


class Agent:
    """A node of the agent hierarchy.

    Children are either other agents or SeDs.  Each agent owns a plug-in
    scheduler used to sort the candidates it forwards upwards.
    """

    def __init__(
        self,
        name: str,
        *,
        scheduler: PluginScheduler | None = None,
    ) -> None:
        if not name:
            raise ValueError("agent name must be a non-empty string")
        self.name = name
        self._scheduler = scheduler or FirstComeFirstServedScheduler()
        self._child_agents: list[Agent] = []
        self._seds: list[ServerDaemon] = []
        self._parent: "Agent | None" = None
        #: Monotonic counter bumped (and propagated to ancestors) on every
        #: topology or scheduler change, so the Master Agent knows when its
        #: resident ranking must be rebuilt.
        self._version = 0

    @property
    def scheduler(self) -> PluginScheduler:
        """The plug-in scheduler sorting this agent's candidates."""
        return self._scheduler

    @scheduler.setter
    def scheduler(self, scheduler: PluginScheduler) -> None:
        self._scheduler = scheduler
        self._bump_version()

    def _bump_version(self) -> None:
        agent: Agent | None = self
        while agent is not None:
            agent._version += 1
            agent = agent._parent

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{len(self._child_agents)} agents, {len(self._seds)} SeDs)"
        )

    # -- topology -----------------------------------------------------------------
    def add_agent(self, agent: "Agent") -> None:
        """Attach a child agent."""
        if agent is self:
            raise ValueError("an agent cannot be its own child")
        self._child_agents.append(agent)
        agent._parent = self
        self._bump_version()

    def add_sed(self, sed: ServerDaemon) -> None:
        """Attach a SeD."""
        self._seds.append(sed)
        self._bump_version()

    @property
    def child_agents(self) -> Sequence["Agent"]:
        """Directly attached child agents."""
        return tuple(self._child_agents)

    @property
    def seds(self) -> Sequence[ServerDaemon]:
        """Directly attached SeDs."""
        return tuple(self._seds)

    def all_seds(self) -> Sequence[ServerDaemon]:
        """Every SeD reachable from this agent (depth-first)."""
        found: list[ServerDaemon] = list(self._seds)
        for child in self._child_agents:
            found.extend(child.all_seds())
        return tuple(found)

    def set_scheduler(self, scheduler: PluginScheduler, *, recursive: bool = True) -> None:
        """Install a plug-in scheduler on this agent (and its subtree by default)."""
        self.scheduler = scheduler
        if recursive:
            for child in self._child_agents:
                child.set_scheduler(scheduler, recursive=True)

    # -- request propagation -----------------------------------------------------------
    def collect_candidates(self, request: ServiceRequest) -> list[CandidateEntry]:
        """Steps 2–4 for this subtree: propagate, collect, sort.

        Only SeDs that can solve the requested service and whose node is
        powered on contribute an estimation vector.
        """
        local: list[CandidateEntry] = []
        for sed in self._seds:
            if not sed.can_solve(request.service):
                continue
            vector = sed.estimate(request)
            if not vector.available:
                continue
            local.append(CandidateEntry.from_vector(vector))

        partial_rankings: list[Sequence[CandidateEntry]] = []
        if local:
            partial_rankings.append(self.scheduler.sort(request, local))
        for child in self._child_agents:
            ranking = child.collect_candidates(request)
            if ranking:
                partial_rankings.append(ranking)

        if not partial_rankings:
            return []
        if len(partial_rankings) == 1:
            return list(partial_rankings[0])
        return self.scheduler.aggregate(request, partial_rankings)


class LocalAgent(Agent):
    """An intermediate agent (LA) of the hierarchy."""


class MasterAgent(Agent):
    """The head of the hierarchy (MA).

    In addition to the common agent behaviour, the Master Agent applies an
    optional *candidate filter* before the final sort — the hook used by
    the adaptive provisioning layer to cap the number of candidate nodes —
    and elects the first SeD of the resulting ranking.
    """

    #: Sentinel meaning "checked: this hierarchy cannot host a resident ranking".
    _RANKING_UNSUPPORTED = object()

    def __init__(
        self,
        name: str = "master-agent",
        *,
        scheduler: PluginScheduler | None = None,
        candidate_filter: CandidateFilter | None = None,
        use_resident_ranking: bool = True,
    ) -> None:
        super().__init__(name, scheduler=scheduler)
        self.candidate_filter = candidate_filter
        #: Force-disable knob: ``False`` always takes the per-request tree
        #: walk (used by equivalence tests and baseline benchmarks).
        self.use_resident_ranking = use_resident_ranking
        self._ranking = None
        self._ranking_version = -1
        #: Optional :class:`~repro.util.phases.PhaseTimer` attributing
        #: election time to the estimation/scoring phases (profiled runs
        #: only; ``None`` costs nothing).
        self.phase_timer = None

    def set_candidate_filter(self, candidate_filter: CandidateFilter | None) -> None:
        """Install (or clear) the candidate filter."""
        self.candidate_filter = candidate_filter

    # -- resident ranking ---------------------------------------------------------
    def _iter_agents(self) -> Iterable["Agent"]:
        stack: list[Agent] = [self]
        while stack:
            agent = stack.pop()
            yield agent
            stack.extend(agent._child_agents)

    def _build_ranking(self):
        """A :class:`~repro.middleware.ranking.ResidentRanking`, or the sentinel.

        The resident order equals the hierarchical walk only when one
        ``rank_key`` policy instance sorts at *every* level (then per-level
        sort + aggregate and a global sort are the same permutation) and
        every SeD runs the default request-independent estimation function
        (then the invalidation listeners see every vector change).
        """
        from repro.middleware.ranking import ResidentRanking

        if getattr(self._scheduler, "rank_key", None) is None:
            return self._RANKING_UNSUPPORTED
        if any(agent._scheduler is not self._scheduler for agent in self._iter_agents()):
            return self._RANKING_UNSUPPORTED
        seds = self.all_seds()
        if any(not sed.estimation_cacheable for sed in seds):
            return self._RANKING_UNSUPPORTED
        return ResidentRanking(self._scheduler, seds)

    def _resident_candidates(self, request: ServiceRequest):
        """Ranked candidates from the resident order, or ``None`` to fall back."""
        if not self.use_resident_ranking:
            return None
        if self._ranking is None or self._ranking_version != self._version:
            if self._ranking is not None and self._ranking is not self._RANKING_UNSUPPORTED:
                self._ranking.detach()
            self._ranking = self._build_ranking()
            self._ranking_version = self._version
        ranking = self._ranking
        if ranking is self._RANKING_UNSUPPORTED:
            return None
        candidates = ranking.candidates(request)
        if candidates is None:
            # A SeD lost its default estimation function mid-run: retire the
            # resident order for good (until the next topology change).
            ranking.detach()
            self._ranking = self._RANKING_UNSUPPORTED
            return None
        return candidates

    def submit(
        self, request: ServiceRequest, *, include_ranking: bool = True
    ) -> SchedulingOutcome:
        """Run the full scheduling process for one request.

        Returns a :class:`SchedulingOutcome` whose ``elected`` field is
        ``None`` when no SeD can solve the request (error case of step 1).
        ``include_ranking=False`` elects identically but leaves the
        outcome's ``ranked_candidates`` empty — sweeps that never read the
        ranking skip materialising an O(servers) tuple per request.
        """
        timer = self.phase_timer
        if timer is not None:
            timer.push("estimation")
        candidates = self._resident_candidates(request)
        if candidates is None:
            candidates = self.collect_candidates(request)
        if timer is not None:
            timer.pop()
            timer.push("scoring")
        try:
            if self.candidate_filter is not None and candidates:
                candidates = list(self.candidate_filter(request, candidates))
                candidates = self.scheduler.sort(request, candidates)
            if not candidates:
                return SchedulingOutcome(
                    request=request, elected=None, ranked_candidates=()
                )
            ranked_vectors = (
                tuple(entry.estimation for entry in candidates) if include_ranking else ()
            )
            return SchedulingOutcome(
                request=request,
                elected=candidates[0].server,
                ranked_candidates=ranked_vectors,
            )
        finally:
            if timer is not None:
                timer.pop()

    def find_sed(self, name: str) -> ServerDaemon:
        """Look up a SeD by name anywhere in the hierarchy."""
        for sed in self.all_seds():
            if sed.name == name:
                return sed
        raise KeyError(f"no SeD named {name!r} in the hierarchy")


def build_flat_hierarchy(
    seds: Iterable[ServerDaemon],
    *,
    scheduler: PluginScheduler | None = None,
) -> MasterAgent:
    """Attach every SeD directly under a Master Agent (the simplest topology)."""
    master = MasterAgent(scheduler=scheduler)
    for sed in seds:
        master.add_sed(sed)
    return master
