"""Agent hierarchy: Master Agent and Local Agents.

Agents "deployed alone or in a hierarchy, facilitate service location and
invocation interactions between clients and SEDs" (Section II-A).  The
scheduling process reproduced here follows Section III-A:

1. a client issues a request to the Master Agent;
2. the request is propagated down the hierarchy to the SeDs able to solve
   the problem;
3. each SeD fills an estimation vector which travels back up;
4. at each level, the agent sorts the candidates with the plug-in
   scheduler; the Master Agent elects the first SeD of the final ranking;
5. the client contacts the elected SeD.

A *candidate filter* hook on the Master Agent lets the green provisioning
layer (Section III-C) restrict the set of candidate nodes before the
final sorting — that is where the administrator's thresholds and
``Preference_provider`` act.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.middleware.plugin_scheduler import (
    CandidateEntry,
    FirstComeFirstServedScheduler,
    PluginScheduler,
)
from repro.middleware.requests import SchedulingOutcome, ServiceRequest
from repro.middleware.sed import ServerDaemon

#: Hook filtering the candidate entries the Master Agent considers.
CandidateFilter = Callable[[ServiceRequest, Sequence[CandidateEntry]], Sequence[CandidateEntry]]


class Agent:
    """A node of the agent hierarchy.

    Children are either other agents or SeDs.  Each agent owns a plug-in
    scheduler used to sort the candidates it forwards upwards.
    """

    def __init__(
        self,
        name: str,
        *,
        scheduler: PluginScheduler | None = None,
    ) -> None:
        if not name:
            raise ValueError("agent name must be a non-empty string")
        self.name = name
        self.scheduler = scheduler or FirstComeFirstServedScheduler()
        self._child_agents: list[Agent] = []
        self._seds: list[ServerDaemon] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{len(self._child_agents)} agents, {len(self._seds)} SeDs)"
        )

    # -- topology -----------------------------------------------------------------
    def add_agent(self, agent: "Agent") -> None:
        """Attach a child agent."""
        if agent is self:
            raise ValueError("an agent cannot be its own child")
        self._child_agents.append(agent)

    def add_sed(self, sed: ServerDaemon) -> None:
        """Attach a SeD."""
        self._seds.append(sed)

    @property
    def child_agents(self) -> Sequence["Agent"]:
        """Directly attached child agents."""
        return tuple(self._child_agents)

    @property
    def seds(self) -> Sequence[ServerDaemon]:
        """Directly attached SeDs."""
        return tuple(self._seds)

    def all_seds(self) -> Sequence[ServerDaemon]:
        """Every SeD reachable from this agent (depth-first)."""
        found: list[ServerDaemon] = list(self._seds)
        for child in self._child_agents:
            found.extend(child.all_seds())
        return tuple(found)

    def set_scheduler(self, scheduler: PluginScheduler, *, recursive: bool = True) -> None:
        """Install a plug-in scheduler on this agent (and its subtree by default)."""
        self.scheduler = scheduler
        if recursive:
            for child in self._child_agents:
                child.set_scheduler(scheduler, recursive=True)

    # -- request propagation -----------------------------------------------------------
    def collect_candidates(self, request: ServiceRequest) -> list[CandidateEntry]:
        """Steps 2–4 for this subtree: propagate, collect, sort.

        Only SeDs that can solve the requested service and whose node is
        powered on contribute an estimation vector.
        """
        local: list[CandidateEntry] = []
        for sed in self._seds:
            if not sed.can_solve(request.service):
                continue
            vector = sed.estimate(request)
            if not vector.available:
                continue
            local.append(CandidateEntry.from_vector(vector))

        partial_rankings: list[Sequence[CandidateEntry]] = []
        if local:
            partial_rankings.append(self.scheduler.sort(request, local))
        for child in self._child_agents:
            ranking = child.collect_candidates(request)
            if ranking:
                partial_rankings.append(ranking)

        if not partial_rankings:
            return []
        if len(partial_rankings) == 1:
            return list(partial_rankings[0])
        return self.scheduler.aggregate(request, partial_rankings)


class LocalAgent(Agent):
    """An intermediate agent (LA) of the hierarchy."""


class MasterAgent(Agent):
    """The head of the hierarchy (MA).

    In addition to the common agent behaviour, the Master Agent applies an
    optional *candidate filter* before the final sort — the hook used by
    the adaptive provisioning layer to cap the number of candidate nodes —
    and elects the first SeD of the resulting ranking.
    """

    def __init__(
        self,
        name: str = "master-agent",
        *,
        scheduler: PluginScheduler | None = None,
        candidate_filter: CandidateFilter | None = None,
    ) -> None:
        super().__init__(name, scheduler=scheduler)
        self.candidate_filter = candidate_filter

    def set_candidate_filter(self, candidate_filter: CandidateFilter | None) -> None:
        """Install (or clear) the candidate filter."""
        self.candidate_filter = candidate_filter

    def submit(self, request: ServiceRequest) -> SchedulingOutcome:
        """Run the full scheduling process for one request.

        Returns a :class:`SchedulingOutcome` whose ``elected`` field is
        ``None`` when no SeD can solve the request (error case of step 1).
        """
        candidates = self.collect_candidates(request)
        if self.candidate_filter is not None and candidates:
            candidates = list(self.candidate_filter(request, candidates))
            candidates = self.scheduler.sort(request, candidates)
        if not candidates:
            return SchedulingOutcome(request=request, elected=None, ranked_candidates=())
        ranked_vectors = tuple(entry.estimation for entry in candidates)
        return SchedulingOutcome(
            request=request,
            elected=candidates[0].server,
            ranked_candidates=ranked_vectors,
        )

    def find_sed(self, name: str) -> ServerDaemon:
        """Look up a SeD by name anywhere in the hierarchy."""
        for sed in self.all_seds():
            if sed.name == name:
                return sed
        raise KeyError(f"no SeD named {name!r} in the hierarchy")


def build_flat_hierarchy(
    seds: Iterable[ServerDaemon],
    *,
    scheduler: PluginScheduler | None = None,
) -> MasterAgent:
    """Attach every SeD directly under a Master Agent (the simplest topology)."""
    master = MasterAgent(scheduler=scheduler)
    for sed in seds:
        master.add_sed(sed)
    return master
