"""Thermal environment of the platform.

The adaptive-provisioning experiment (Section IV-C) reacts to two thermal
states: *in-range* temperature (< 25 °C) and *out-of-range* temperature
(> 25 °C).  Event 3 of Figure 9 is "an instant rise of temperature"
detected by the Master Agent, and Event 4 is the return to an acceptable
temperature.

This module models the machine-room temperature as a piecewise-constant
signal that can be perturbed by :class:`ThermalEvent` injections (the
"unexpected" events of the paper) and optionally nudged by the platform's
own power draw, which is enough to reproduce the scheduler-visible
behaviour: a temperature reading compared against a threshold.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.util.validation import ensure_non_negative

#: Threshold above which the paper's administrator rules consider the
#: temperature out of range (degrees Celsius).
DEFAULT_TEMPERATURE_THRESHOLD = 25.0


@dataclass(frozen=True, order=True)
class ThermalEvent:
    """A step change of the ambient temperature at a given time.

    ``time`` is the simulated time (s) at which the machine-room
    temperature becomes ``temperature`` (°C) and stays there until the next
    event.
    """

    time: float
    temperature: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.time, "time")


class ThermalEnvironment:
    """Piecewise-constant machine-room temperature with optional load coupling.

    Parameters
    ----------
    base_temperature:
        Temperature before any event (°C).
    threshold:
        Out-of-range threshold used by administrator rules (°C).
    load_coefficient:
        Additional degrees per kilowatt of platform draw.  The default of
        0.0 keeps the temperature purely event-driven, matching the paper's
        experiment where the heat peak is injected, not emergent.
    """

    def __init__(
        self,
        *,
        base_temperature: float = 21.0,
        threshold: float = DEFAULT_TEMPERATURE_THRESHOLD,
        load_coefficient: float = 0.0,
    ) -> None:
        self.base_temperature = float(base_temperature)
        self.threshold = float(threshold)
        ensure_non_negative(load_coefficient, "load_coefficient")
        self.load_coefficient = float(load_coefficient)
        self._events: list[ThermalEvent] = []
        self._event_times: list[float] = []

    def schedule_event(self, event: ThermalEvent) -> None:
        """Register a temperature step.  Events may be added in any order."""
        index = bisect.bisect(self._event_times, event.time)
        self._event_times.insert(index, event.time)
        self._events.insert(index, event)

    def clear_events(self) -> None:
        """Remove all scheduled events."""
        self._events.clear()
        self._event_times.clear()

    @property
    def events(self) -> tuple[ThermalEvent, ...]:
        """Scheduled events sorted by time."""
        return tuple(self._events)

    def ambient_temperature(self, time: float) -> float:
        """Event-driven component of the temperature at ``time`` (°C)."""
        index = bisect.bisect_right(self._event_times, time) - 1
        if index < 0:
            return self.base_temperature
        return self._events[index].temperature

    def temperature(self, time: float, *, platform_power_watts: float = 0.0) -> float:
        """Temperature reading at ``time`` (°C).

        ``platform_power_watts`` adds ``load_coefficient`` degrees per
        kilowatt drawn, when load coupling is enabled.
        """
        ensure_non_negative(platform_power_watts, "platform_power_watts")
        return (
            self.ambient_temperature(time)
            + self.load_coefficient * platform_power_watts / 1000.0
        )

    def in_range(self, time: float, *, platform_power_watts: float = 0.0) -> bool:
        """Whether the temperature at ``time`` is within the allowed range."""
        return (
            self.temperature(time, platform_power_watts=platform_power_watts)
            <= self.threshold
        )
