"""Server power-draw models.

The scheduler in the paper needs, for each server ``s``:

* ``c_s``  — average power consumption when the server is fully loaded,
* ``bc_s`` — consumption during the boot process,
* the instantaneous power draw, which the Omegawatt wattmeters sample at
  1 Hz on Grid'5000.

Servers are *not* energy proportional (Section II-B), so the default model
is a linear interpolation between a non-zero idle power and the peak power
as a function of core utilisation — the standard first-order model used by
CloudSim-style simulators and consistent with the measurements the paper
relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.util.validation import ensure_in_range, ensure_non_negative


class PowerModel(ABC):
    """Maps a server's utilisation (``[0, 1]``) to instantaneous power (W)."""

    @abstractmethod
    def power_at(self, utilization: float) -> float:
        """Instantaneous power draw in watts at the given utilisation."""

    @property
    @abstractmethod
    def idle_power(self) -> float:
        """Power draw at zero utilisation (W)."""

    @property
    @abstractmethod
    def peak_power(self) -> float:
        """Power draw at full utilisation (W)."""

    def energy(self, utilization: float, duration: float) -> float:
        """Energy in joules for holding ``utilization`` during ``duration`` seconds."""
        ensure_non_negative(duration, "duration")
        return self.power_at(utilization) * duration


@dataclass(frozen=True)
class LinearPowerModel(PowerModel):
    """Linear power model: ``P(u) = idle + (peak - idle) * u``.

    ``idle`` and ``peak`` are in watts; ``peak`` must be at least ``idle``.
    """

    idle: float
    peak: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.idle, "idle")
        ensure_non_negative(self.peak, "peak")
        if self.peak < self.idle:
            raise ValueError(
                f"peak power ({self.peak} W) must be >= idle power ({self.idle} W)"
            )

    def power_at(self, utilization: float) -> float:
        """Interpolated power at ``utilization`` in ``[0, 1]``."""
        ensure_in_range(utilization, "utilization", 0.0, 1.0)
        return self.idle + (self.peak - self.idle) * utilization

    @property
    def idle_power(self) -> float:
        return self.idle

    @property
    def peak_power(self) -> float:
        return self.peak
