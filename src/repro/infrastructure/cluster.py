"""Cluster model: a named group of nodes sharing a hardware specification.

The paper's platform (Table I) groups nodes into the Orion, Taurus and
Sagittaire clusters; the heterogeneity study (Table III) adds the Sim1 and
Sim2 simulated clusters.  Figures 5 report energy *per cluster*, so the
cluster is also the natural aggregation unit for metrics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.infrastructure.node import Node, NodeSpec, NodeState
from repro.infrastructure.power_model import PowerModel


class Cluster:
    """A named collection of :class:`~repro.infrastructure.node.Node` objects."""

    def __init__(self, name: str, nodes: Iterable[Node]) -> None:
        if not name:
            raise ValueError("cluster name must be a non-empty string")
        self.name = name
        self._nodes: list[Node] = list(nodes)
        for node in self._nodes:
            if node.cluster != name:
                raise ValueError(
                    f"node {node.name!r} declares cluster {node.cluster!r}, "
                    f"cannot add it to cluster {name!r}"
                )
        names = [node.name for node in self._nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in cluster {name!r}")

    @classmethod
    def homogeneous(
        cls,
        name: str,
        count: int,
        spec_template: NodeSpec,
        *,
        power_model: PowerModel | None = None,
        initial_state: NodeState = NodeState.ON,
    ) -> "Cluster":
        """Build a cluster of ``count`` identical nodes named ``<name>-<i>``.

        ``spec_template.name`` and ``spec_template.cluster`` are overridden
        with generated values; all other spec fields are copied.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        nodes = []
        for index in range(count):
            spec = NodeSpec(
                name=f"{name}-{index}",
                cluster=name,
                cores=spec_template.cores,
                flops_per_core=spec_template.flops_per_core,
                idle_power=spec_template.idle_power,
                peak_power=spec_template.peak_power,
                boot_power=spec_template.boot_power,
                boot_time=spec_template.boot_time,
                memory_gb=spec_template.memory_gb,
            )
            nodes.append(
                Node(spec, power_model=power_model, initial_state=initial_state)
            )
        return cls(name, nodes)

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __getitem__(self, index: int) -> Node:
        return self._nodes[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Cluster({self.name!r}, {len(self._nodes)} nodes)"

    @property
    def nodes(self) -> Sequence[Node]:
        """Nodes in this cluster, in declaration order."""
        return tuple(self._nodes)

    def node(self, name: str) -> Node:
        """Look up a node by name.  Raises :class:`KeyError` if absent."""
        for candidate in self._nodes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no node named {name!r} in cluster {self.name!r}")

    # -- aggregates -------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total number of cores across the cluster."""
        return sum(node.spec.cores for node in self._nodes)

    @property
    def total_peak_power(self) -> float:
        """Sum of per-node peak power (W)."""
        return sum(node.spec.peak_power for node in self._nodes)

    @property
    def total_idle_power(self) -> float:
        """Sum of per-node idle power (W)."""
        return sum(node.spec.idle_power for node in self._nodes)

    def current_power(self) -> float:
        """Instantaneous power draw of the whole cluster (W)."""
        return sum(node.current_power() for node in self._nodes)

    def available_nodes(self) -> Sequence[Node]:
        """Nodes that are powered on."""
        return tuple(node for node in self._nodes if node.is_available)
