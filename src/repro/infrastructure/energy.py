"""Event-driven energy accounting.

The seed reproduction mirrored the Grid'5000 measurement setup literally:
a :class:`~repro.infrastructure.wattmeter.Wattmeter` polled every node
once per simulated second, allocating one sample object per node per
second — O(nodes × simulated-seconds) time *and* memory.  Node power is
piecewise-constant between scheduling events, so the exact same energy
figures are computable in O(state-changes): this module does that.

Three cooperating pieces:

* :class:`PowerSegment` — one maximal ``(start, end, watts)`` interval of
  constant power on one node.
* :class:`SegmentEnergyLog` — the segment store.  It preserves the full
  query surface of the polling :class:`~repro.infrastructure.wattmeter.EnergyLog`
  (``total_energy``, ``energy_by_node/cluster``, ``power_trace``,
  ``mean_power``, ``samples``) but integrates energy per segment and only
  materialises sampled traces lazily, when a figure asks for them.
* :class:`EnergyAccountant` — subscribes to every node's power-change
  notification (:meth:`~repro.infrastructure.node.Node.add_power_listener`)
  and closes a segment on each transition, stamping it with the
  simulation clock.

Integration modes
-----------------
``mode="quantized"`` (the default) reproduces the seed wattmeter's
left-Riemann 1 Hz semantics *exactly*: a segment ``(t0, t1]`` contributes
``watts × sample_period`` for every sampling instant ``t`` with
``t0 < t <= t1`` (the instant at a transition time reads the power in
effect *before* the transition, exactly like ``Wattmeter.advance_to``
called at the top of an event handler).  Tick counts come from floor
arithmetic — O(1) per segment — so the per-figure numbers match the
polling path bit-for-bit whenever the sample period is exactly
representable in binary floating point (integers and dyadic rationals
such as 0.5; the experiments use 1 s, 5 s and 10 s).

``mode="exact"`` integrates analytically: a segment contributes
``watts × (t1 - t0)``.  This is the physically exact energy of the
piecewise-constant power model; trace queries (``power_trace``,
``samples``, ``mean_power``) still render on the sampling grid so figures
remain drawable.

One deliberate fidelity improvement over the seed: the polling wattmeter
only observed power at the instants the driver advanced it, so a
provisioning transition (boot completion, power-off) that fired *between*
two driver events was attributed to the wrong instants.  The accountant
is told about every transition by the node itself, so ticks are always
attributed to the power actually in effect.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, Sequence

import numpy as np

from repro.util.validation import ensure_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.infrastructure.node import Node
    from repro.infrastructure.wattmeter import PowerSample

#: Valid integration modes of :class:`SegmentEnergyLog` / :class:`EnergyAccountant`.
#: (The driver-level ``energy_mode`` adds ``"polling"`` and ``"off"`` on top —
#: see :data:`repro.middleware.driver.ENERGY_MODES`.)
SEGMENT_MODES = ("quantized", "exact")


class EnergyReadout(Protocol):
    """The energy-log query surface metrics and figures consume.

    Both the segment-based :class:`SegmentEnergyLog` and the legacy polling
    :class:`~repro.infrastructure.wattmeter.EnergyLog` satisfy this.
    """

    sample_period: float

    @property
    def total_energy(self) -> float: ...

    def energy_of_node(self, node: str) -> float: ...

    def energy_by_node(self) -> Mapping[str, float]: ...

    def energy_of_cluster(self, cluster: str) -> float: ...

    def energy_by_cluster(self) -> Mapping[str, float]: ...

    def power_trace(self, node: str | None = None) -> np.ndarray: ...

    def mean_power(self, node: str) -> float: ...

    @property
    def samples(self) -> Sequence["PowerSample"]: ...


class PowerSegment:
    """One maximal constant-power interval on one node.

    ``watts`` is the draw over ``(start, end]``; ``ticks`` is the number of
    sampling instants the interval covers under the log's quantized
    semantics (see module docstring).
    """

    __slots__ = ("node", "cluster", "start", "end", "watts", "ticks")

    def __init__(
        self, node: str, cluster: str, start: float, end: float, watts: float, ticks: int
    ) -> None:
        self.node = node
        self.cluster = cluster
        self.start = start
        self.end = end
        self.watts = watts
        self.ticks = ticks

    @property
    def duration(self) -> float:
        """Length of the interval (s)."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PowerSegment({self.node!r}, [{self.start}, {self.end}], "
            f"{self.watts} W, ticks={self.ticks})"
        )


class SegmentEnergyLog:
    """Per-node power segments with the polling ``EnergyLog`` query surface.

    Segments are appended through :meth:`add_segment` in per-node
    chronological order (adjacent same-power segments are merged in
    place).  Energy figures are maintained incrementally — O(1) per
    segment — while sampled representations (``samples``,
    ``power_trace``) are materialised lazily on demand.

    Per-node queries (``power_trace(node)``, ``mean_power``,
    ``segments(node)``) read only that node's segment list: O(own
    segments/ticks), never a scan of every node's data.
    """

    def __init__(
        self,
        sample_period: float = 1.0,
        *,
        mode: str = "quantized",
        start_time: float = 0.0,
    ) -> None:
        ensure_positive(sample_period, "sample_period")
        if mode not in SEGMENT_MODES:
            raise ValueError(f"mode must be one of {SEGMENT_MODES}, got {mode!r}")
        self.sample_period = sample_period
        self.mode = mode
        self.start_time = start_time
        #: Per-node segment lists, in registration order (drives the
        #: node interleaving of :attr:`samples`).
        self._segments: dict[str, list[PowerSegment]] = {}
        self._node_clusters: dict[str, str] = {}
        self._energy_by_node: dict[str, float] = {}
        self._energy_by_cluster: dict[str, float] = {}
        self._ticks_by_node: dict[str, int] = {}

    # -- recording ---------------------------------------------------------------
    def register_node(self, node: str, cluster: str) -> None:
        """Declare a node up front (fixes ordering; zero-energy nodes report 0.0)."""
        if node in self._segments:
            return
        self._segments[node] = []
        self._node_clusters[node] = cluster
        self._energy_by_node[node] = 0.0
        self._energy_by_cluster.setdefault(cluster, 0.0)
        self._ticks_by_node[node] = 0

    def _ticks_through(self, time: float) -> int:
        """Sampling instants at ``start_time + k*period`` with tick time <= ``time``."""
        if time < self.start_time:
            return 0
        return int(math.floor((time - self.start_time) / self.sample_period)) + 1

    def add_segment(
        self, node: str, cluster: str, start: float, end: float, watts: float
    ) -> None:
        """Close one constant-power interval ``(start, end]`` for ``node``.

        Segments of one node must be contiguous — each starting exactly
        where the previous one ended, the first at the log's
        ``start_time`` — because tick attribution charges every sampling
        instant since the last accounted one to the incoming segment; a
        gap would silently book its instants at the wrong power.  A
        segment whose power equals the previous one is merged into it.
        The node's energy is updated according to the log's mode.
        """
        if end < start:
            raise ValueError(f"segment for {node!r} ends before it starts: {end} < {start}")
        self.register_node(node, cluster)
        segments = self._segments[node]
        expected_start = segments[-1].end if segments else self.start_time
        if start != expected_start:
            raise ValueError(
                f"segments for {node!r} must be contiguous: expected start "
                f"{expected_start}, got {start}"
            )

        counted = self._ticks_by_node[node]
        ticks = self._ticks_through(end) - counted
        if self.mode == "quantized":
            joules = watts * self.sample_period * ticks
        else:
            joules = watts * (end - start)
        if ticks == 0 and end == start:
            return  # zero-measure: no tick, no duration, nothing to record
        self._ticks_by_node[node] = counted + ticks
        self._energy_by_node[node] += joules
        self._energy_by_cluster[cluster] += joules

        if segments and segments[-1].watts == watts and segments[-1].end == start:
            last = segments[-1]
            last.end = end
            last.ticks += ticks
        else:
            segments.append(PowerSegment(node, cluster, start, end, watts, ticks))

    # -- energy queries ----------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Total integrated energy over all nodes (J)."""
        return sum(self._energy_by_node.values())

    def energy_of_node(self, node: str) -> float:
        """Integrated energy of one node (J); 0.0 if never observed."""
        return self._energy_by_node.get(node, 0.0)

    def energy_by_node(self) -> Mapping[str, float]:
        """Integrated energy per node (J)."""
        return dict(self._energy_by_node)

    def energy_of_cluster(self, cluster: str) -> float:
        """Integrated energy of one cluster (J); 0.0 if never observed."""
        return self._energy_by_cluster.get(cluster, 0.0)

    def energy_by_cluster(self) -> Mapping[str, float]:
        """Integrated energy per cluster (J)."""
        return dict(self._energy_by_cluster)

    # -- segment queries ---------------------------------------------------------
    def segments(self, node: str | None = None) -> Sequence[PowerSegment]:
        """Segments of one node (or of every node, grouped by node)."""
        if node is not None:
            return tuple(self._segments.get(node, ()))
        return tuple(
            segment for segments in self._segments.values() for segment in segments
        )

    def tick_count(self, node: str) -> int:
        """Number of sampling instants accounted for ``node`` so far."""
        return self._ticks_by_node.get(node, 0)

    @property
    def segment_count(self) -> int:
        """Total stored segments across all nodes (the O(state-changes) footprint)."""
        return sum(len(segments) for segments in self._segments.values())

    @property
    def nodes(self) -> Sequence[str]:
        """Observed node names, in registration order."""
        return tuple(self._segments)

    # -- lazily materialised trace queries ----------------------------------------
    def _node_watts(self, node: str) -> np.ndarray:
        """Per-tick power of one node as a flat array (quantized rendering)."""
        segments = self._segments.get(node, [])
        if not segments:
            return np.empty(0, dtype=float)
        counts = np.array([segment.ticks for segment in segments], dtype=int)
        watts = np.array([segment.watts for segment in segments], dtype=float)
        return np.repeat(watts, counts)

    def power_trace(self, node: str | None = None) -> np.ndarray:
        """Return a ``(n, 2)`` array of ``(time, watts)`` sampling instants.

        With ``node=None`` the platform-wide power is returned: per-node
        traces summed instant by instant.  The array is materialised from
        the segments on each call — in exact mode it is a ``sample_period``
        rendering of the analytic piecewise-constant power.
        """
        if node is not None:
            values = self._node_watts(node)
            times = self.start_time + np.arange(values.size, dtype=float) * self.sample_period
            return np.column_stack([times, values]) if values.size else np.empty((0, 2))
        traces = [self._node_watts(name) for name in self._segments]
        length = max((trace.size for trace in traces), default=0)
        if length == 0:
            return np.empty((0, 2))
        totals = np.zeros(length, dtype=float)
        for trace in traces:
            totals[: trace.size] += trace
        times = self.start_time + np.arange(length, dtype=float) * self.sample_period
        return np.column_stack([times, totals])

    def mean_power(self, node: str) -> float:
        """Average of the (quantized) power instants for ``node`` (W)."""
        trace = self.power_trace(node)
        if trace.size == 0:
            return 0.0
        return float(trace[:, 1].mean())

    @property
    def samples(self) -> Sequence["PowerSample"]:
        """The equivalent 1-per-period sample sequence, materialised lazily.

        Ordering matches the polling wattmeter: chronological, nodes in
        registration order within one instant.  This allocates
        O(nodes × ticks) objects — use it for figures and tests, not in
        hot paths (that is the whole point of the segment store).
        """
        from repro.infrastructure.wattmeter import PowerSample

        per_node = [
            (name, self._node_clusters[name], self._node_watts(name))
            for name in self._segments
        ]
        length = max((watts.size for _, _, watts in per_node), default=0)
        out: list[PowerSample] = []
        for k in range(length):
            time = self.start_time + k * self.sample_period
            for name, cluster, watts in per_node:
                if k < watts.size:
                    out.append(PowerSample(time=time, node=name, cluster=cluster, watts=float(watts[k])))
        return tuple(out)


class EnergyAccountant:
    """Event-driven replacement for the polling wattmeter.

    Subscribes to every node's power-change notification and closes a
    :class:`PowerSegment` per transition, stamped with the simulation
    clock (``clock()`` — typically ``lambda: engine.now``).  Call
    :meth:`sync` to bring every node's accounting up to a given instant
    (the driver does this once, at the end of a run) and :meth:`close`
    to detach from the nodes.
    """

    def __init__(
        self,
        nodes: Iterable["Node"],
        *,
        clock: Callable[[], float],
        mode: str = "quantized",
        sample_period: float = 1.0,
        start_time: float = 0.0,
        phase_timer=None,
    ) -> None:
        self.log = SegmentEnergyLog(sample_period, mode=mode, start_time=start_time)
        self._clock = clock
        #: Optional :class:`~repro.util.phases.PhaseTimer` booking segment
        #: bookkeeping to the "energy" phase on profiled runs.
        self._phase_timer = phase_timer
        self._nodes: list[Node] = list(nodes)
        #: Open interval per node: (segment start, watts in effect since then).
        self._open: dict[str, tuple[float, float]] = {}
        for node in self._nodes:
            self.log.register_node(node.name, node.cluster)
            self._open[node.name] = (start_time, node.current_power())
            node.add_power_listener(self._on_power_change)
        self._closed = False

    @property
    def mode(self) -> str:
        """Integration mode of the backing log."""
        return self.log.mode

    @property
    def sample_period(self) -> float:
        """Sampling period of the quantized rendering (s)."""
        return self.log.sample_period

    @property
    def monitored_nodes(self) -> Sequence["Node"]:
        """Nodes this accountant listens to."""
        return tuple(self._nodes)

    # -- the transition hook -------------------------------------------------------
    def _on_power_change(self, node: "Node") -> None:
        timer = self._phase_timer
        if timer is not None:
            timer.push("energy")
        try:
            now = self._clock()
            start, watts = self._open[node.name]
            new_watts = node.current_power()
            if new_watts == watts:
                return  # same draw: the open segment simply extends
            self.log.add_segment(node.name, node.cluster, start, now, watts)
            self._open[node.name] = (now, new_watts)
        finally:
            if timer is not None:
                timer.pop()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has detached this accountant."""
        return self._closed

    # -- explicit synchronisation ----------------------------------------------------
    def sync(self, now: float) -> None:
        """Account every node's open interval up to ``now`` (idempotent).

        After ``sync(t)`` the log's figures include everything up to
        ``t``; the open intervals restart at ``t`` with unchanged power.
        Raises once the accountant is closed: transitions are no longer
        observed then, so extending the open intervals would book time at
        stale power levels.
        """
        if self._closed:
            raise RuntimeError("cannot sync a closed EnergyAccountant")
        for node in self._nodes:
            start, watts = self._open[node.name]
            self.log.add_segment(node.name, node.cluster, start, now, watts)
            self._open[node.name] = (now, watts)

    def close(self, now: float | None = None) -> None:
        """Detach from the nodes, optionally accounting up to ``now`` first."""
        if self._closed:
            return
        if now is not None:
            self.sync(now)
        for node in self._nodes:
            node.remove_power_listener(self._on_power_change)
        self._closed = True
