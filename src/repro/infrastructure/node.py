"""Server (node) model.

A node exposes exactly the observables the paper's scheduler needs
(Section III-C):

``f_s``
    FLOPS of the server.  Tasks in the paper are single-core CPU-bound
    problems, so the per-core figure drives individual task durations while
    the total figure (cores × per-core FLOPS) represents throughput.
``c_s``
    Average power consumption when fully loaded (W).
``bc_s``
    Power consumption during the boot process (W).
``bt_s``
    Boot time (s).
``w_s``
    Estimation of the task waiting queue (s), tracked by the simulation.

The node also carries a small state machine (``OFF → BOOTING → ON``) used
by the adaptive provisioning experiments, and tracks how many cores are
currently busy so that its utilisation-dependent power draw is observable
at any instant.  Every transition that can move the power draw fires the
node's power listeners (:meth:`Node.add_power_listener`), which is how the
event-driven energy accountant closes power segments without polling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.infrastructure.power_model import LinearPowerModel, PowerModel
from repro.util.validation import ensure_non_negative, ensure_positive

#: Callback invoked after a node's power draw may have changed.
PowerListener = Callable[["Node"], None]


class NodeState(enum.Enum):
    """Lifecycle states of a server.

    ``FAILED`` models a crash (fault injection through
    :class:`~repro.scenario.events.NodeFailure`): the node stops drawing
    power instantly, loses whatever was running on its cores, and can only
    return to service through :meth:`Node.repair`.
    """

    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    FAILED = "failed"


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a server.

    Parameters
    ----------
    name:
        Unique node identifier, e.g. ``"taurus-3"``.
    cluster:
        Name of the cluster the node belongs to, e.g. ``"taurus"``.
    cores:
        Number of CPU cores.  A node cannot execute more concurrent
        single-core tasks than it has cores (Section IV-A).
    flops_per_core:
        Sustained floating-point rate of one core (FLOP/s).
    idle_power:
        Power draw when powered on and idle (W).
    peak_power:
        Power draw when all cores are busy (W) — the paper's ``c_s``.
    boot_power:
        Power draw during the boot process (W) — the paper's ``bc_s``.
    boot_time:
        Time to go from OFF to ON (s) — the paper's ``bt_s``.
    memory_gb:
        Installed memory, only used for reporting (Table I).
    """

    name: str
    cluster: str
    cores: int
    flops_per_core: float
    idle_power: float
    peak_power: float
    boot_power: float = 0.0
    boot_time: float = 0.0
    memory_gb: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be a non-empty string")
        if not self.cluster:
            raise ValueError("cluster name must be a non-empty string")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        ensure_positive(self.flops_per_core, "flops_per_core")
        ensure_non_negative(self.idle_power, "idle_power")
        ensure_non_negative(self.peak_power, "peak_power")
        if self.peak_power < self.idle_power:
            raise ValueError(
                f"peak_power ({self.peak_power}) must be >= idle_power "
                f"({self.idle_power}) for node {self.name!r}"
            )
        ensure_non_negative(self.boot_power, "boot_power")
        ensure_non_negative(self.boot_time, "boot_time")
        ensure_non_negative(self.memory_gb, "memory_gb")

    @property
    def total_flops(self) -> float:
        """Aggregate FLOP/s with all cores busy."""
        return self.cores * self.flops_per_core

    def default_power_model(self) -> LinearPowerModel:
        """Linear power model between the spec's idle and peak power."""
        return LinearPowerModel(idle=self.idle_power, peak=self.peak_power)


class Node:
    """Runtime state of a server.

    The node tracks its power state, the number of busy cores and basic
    execution counters.  It performs no time-keeping itself — the
    simulation engine (or the middleware driver) advances time and asks the
    node for its instantaneous power draw through :meth:`current_power`.
    """

    def __init__(
        self,
        spec: NodeSpec,
        *,
        power_model: PowerModel | None = None,
        initial_state: NodeState = NodeState.ON,
    ) -> None:
        self.spec = spec
        self.power_model = power_model or spec.default_power_model()
        self._state = initial_state
        self._busy_cores = 0
        self._boot_completion_time: float | None = None
        self._pre_failure_state = NodeState.ON
        self._completed_tasks = 0
        self._total_busy_core_seconds = 0.0
        self._power_listeners: list[PowerListener] = []

    # -- identification ----------------------------------------------------
    @property
    def name(self) -> str:
        """Node identifier (from the spec)."""
        return self.spec.name

    @property
    def cluster(self) -> str:
        """Cluster this node belongs to (from the spec)."""
        return self.spec.cluster

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Node({self.name!r}, state={self._state.value}, "
            f"busy={self._busy_cores}/{self.spec.cores})"
        )

    # -- power-change notification --------------------------------------------
    def add_power_listener(self, listener: PowerListener) -> None:
        """Subscribe to power-state transitions.

        ``listener(node)`` fires *after* every state change that can move
        the node's instantaneous power draw (core acquired/released, power
        off, boot start/completion).  This is the hook the event-driven
        :class:`~repro.infrastructure.energy.EnergyAccountant` uses to
        close power segments without polling.
        """
        self._power_listeners.append(listener)

    def remove_power_listener(self, listener: PowerListener) -> None:
        """Unsubscribe a previously added listener (ValueError if absent)."""
        self._power_listeners.remove(listener)

    def _power_changed(self) -> None:
        for listener in self._power_listeners:
            listener(self)

    # -- power state machine -----------------------------------------------
    @property
    def state(self) -> NodeState:
        """Current lifecycle state."""
        return self._state

    @property
    def is_available(self) -> bool:
        """Whether the node is powered on and can accept work."""
        return self._state is NodeState.ON

    def power_off(self) -> None:
        """Turn the node off.  Requires that no task is running."""
        if self._busy_cores:
            raise RuntimeError(
                f"cannot power off {self.name}: {self._busy_cores} cores busy"
            )
        self._state = NodeState.OFF
        self._boot_completion_time = None
        if self._power_listeners:
            self._power_changed()

    def fail(self, *, now: float = 0.0) -> int:
        """Crash the node: drop all running work, draw no power.

        Returns the number of cores that were busy — the caller (the
        simulation driver) owns the affected tasks and decides whether to
        requeue or fail them.  An in-progress boot is abandoned.  Crashing
        an already-FAILED node is an error: fault injection validates its
        timelines, so a double failure is a bug, not a scenario.
        """
        if self._state is NodeState.FAILED:
            raise RuntimeError(f"node {self.name} is already failed")
        ensure_non_negative(now, "now")
        lost_cores = self._busy_cores
        self._busy_cores = 0
        # A node that was OFF when it "crashed" must come back OFF, not
        # powered on — otherwise a fail/repair pair would silently inflate
        # energy totals.  An interrupted boot restarts from OFF too.
        self._pre_failure_state = (
            NodeState.ON if self._state is NodeState.ON else NodeState.OFF
        )
        self._state = NodeState.FAILED
        self._boot_completion_time = None
        if self._power_listeners:
            self._power_changed()
        return lost_cores

    def repair(self) -> None:
        """Return a FAILED node to its pre-failure power state.

        A node that was ON when it crashed comes back ON with all cores
        idle; one that was OFF (or mid-boot) comes back OFF and must be
        booted through the normal provisioning path.
        """
        if self._state is not NodeState.FAILED:
            raise RuntimeError(f"repair() on node {self.name} in state {self._state}")
        self._state = self._pre_failure_state
        if self._power_listeners:
            self._power_changed()

    @property
    def boot_ready_at(self) -> float | None:
        """Completion time of the boot in progress, or ``None``.

        Cleared when the boot completes and when a crash or power-off
        abandons it — which is what lets a scheduled boot-completion
        event recognise that the boot it belonged to no longer exists.
        """
        return self._boot_completion_time

    def begin_boot(self, now: float) -> float:
        """Start booting an OFF node at time ``now``.

        Returns the absolute time at which the boot completes.  Booting an
        already-ON node is a no-op returning ``now``; a FAILED node cannot
        boot — it must be repaired first.
        """
        if self._state is NodeState.FAILED:
            raise RuntimeError(f"cannot boot failed node {self.name}; repair() it first")
        if self._state is NodeState.ON:
            return now
        if self._state is NodeState.BOOTING:
            assert self._boot_completion_time is not None
            return self._boot_completion_time
        self._state = NodeState.BOOTING
        self._boot_completion_time = now + self.spec.boot_time
        if self._power_listeners:
            self._power_changed()
        return self._boot_completion_time

    def complete_boot(self) -> None:
        """Transition a BOOTING node to ON."""
        if self._state is not NodeState.BOOTING:
            raise RuntimeError(f"complete_boot() on node {self.name} in state {self._state}")
        self._state = NodeState.ON
        self._boot_completion_time = None
        if self._power_listeners:
            self._power_changed()

    @property
    def boot_completion_time(self) -> float | None:
        """Absolute completion time of an in-progress boot, if any."""
        return self._boot_completion_time

    # -- core occupancy ------------------------------------------------------
    @property
    def busy_cores(self) -> int:
        """Number of cores currently executing a task."""
        return self._busy_cores

    @property
    def free_cores(self) -> int:
        """Number of idle cores (0 when the node is not ON)."""
        if self._state is not NodeState.ON:
            return 0
        return self.spec.cores - self._busy_cores

    @property
    def utilization(self) -> float:
        """Fraction of cores busy, in ``[0, 1]``."""
        if self._state is not NodeState.ON or self.spec.cores == 0:
            return 0.0
        return self._busy_cores / self.spec.cores

    def acquire_core(self) -> None:
        """Mark one core as busy.  Raises if the node is full or not ON."""
        if self._state is not NodeState.ON:
            raise RuntimeError(f"node {self.name} is {self._state.value}, cannot run tasks")
        if self._busy_cores >= self.spec.cores:
            raise RuntimeError(f"node {self.name} has no free core")
        self._busy_cores += 1
        if self._power_listeners:
            self._power_changed()

    def release_core(self, *, busy_seconds: float = 0.0) -> None:
        """Mark one core as free after a task completes.

        ``busy_seconds`` is the core-time consumed by the finished task and
        feeds the utilisation counters used in reports.
        """
        if self._busy_cores <= 0:
            raise RuntimeError(f"release_core() on idle node {self.name}")
        ensure_non_negative(busy_seconds, "busy_seconds")
        self._busy_cores -= 1
        self._completed_tasks += 1
        self._total_busy_core_seconds += busy_seconds
        if self._power_listeners:
            self._power_changed()

    # -- power ---------------------------------------------------------------
    def current_power(self) -> float:
        """Instantaneous power draw in watts for the current state."""
        if self._state is NodeState.OFF or self._state is NodeState.FAILED:
            return 0.0
        if self._state is NodeState.BOOTING:
            return self.spec.boot_power
        return self.power_model.power_at(self.utilization)

    # -- execution model -------------------------------------------------------
    def task_duration(self, flop: float) -> float:
        """Time (s) for one core of this node to execute ``flop`` operations."""
        ensure_non_negative(flop, "flop")
        return flop / self.spec.flops_per_core

    # -- counters ----------------------------------------------------------------
    @property
    def completed_tasks(self) -> int:
        """Number of tasks completed on this node so far."""
        return self._completed_tasks

    @property
    def total_busy_core_seconds(self) -> float:
        """Accumulated core-seconds of completed work."""
        return self._total_busy_core_seconds
