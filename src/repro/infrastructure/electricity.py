"""Electricity-cost schedule.

Section IV-C defines the cost of energy "as a ratio between the cost over
a given period and the theoretical maximum cost" with three states:

* Regular time — cost 1.0 (most expensive),
* Off-peak time 1 — cost 0.8,
* Off-peak time 2 — cost 0.5 (least expensive).

The schedule is a piecewise-constant function of simulated time built from
:class:`TariffPeriod` segments.  The provisioning planner queries both the
*current* cost and the cost at a *future* time (the Master Agent learns of
scheduled cost changes 20 minutes ahead), so lookahead is a first-class
operation here.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.validation import ensure_in_range, ensure_non_negative

#: The three cost levels used throughout the paper's experiments.
REGULAR_COST = 1.0
OFF_PEAK_1_COST = 0.8
OFF_PEAK_2_COST = 0.5


@dataclass(frozen=True, order=True)
class TariffPeriod:
    """The electricity cost becomes ``cost`` at simulated time ``start`` (s)."""

    start: float
    cost: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.start, "start")
        ensure_in_range(self.cost, "cost", 0.0, 1.0)


class ElectricityCostSchedule:
    """Piecewise-constant electricity cost over simulated time."""

    def __init__(
        self,
        periods: Iterable[TariffPeriod] = (),
        *,
        default_cost: float = REGULAR_COST,
    ) -> None:
        ensure_in_range(default_cost, "default_cost", 0.0, 1.0)
        self.default_cost = float(default_cost)
        self._periods: list[TariffPeriod] = sorted(periods)
        self._starts: list[float] = [p.start for p in self._periods]

    @classmethod
    def constant(cls, cost: float) -> "ElectricityCostSchedule":
        """Schedule with a single constant cost."""
        return cls(default_cost=cost)

    def add_period(self, period: TariffPeriod) -> None:
        """Insert a tariff change, keeping the schedule sorted."""
        index = bisect.bisect(self._starts, period.start)
        self._starts.insert(index, period.start)
        self._periods.insert(index, period)

    @property
    def periods(self) -> Sequence[TariffPeriod]:
        """Tariff changes sorted by start time."""
        return tuple(self._periods)

    def cost_at(self, time: float) -> float:
        """Electricity cost ratio in effect at simulated ``time``."""
        index = bisect.bisect_right(self._starts, time) - 1
        if index < 0:
            return self.default_cost
        return self._periods[index].cost

    def next_change_after(self, time: float) -> TariffPeriod | None:
        """The first tariff change strictly after ``time``, if any."""
        index = bisect.bisect_right(self._starts, time)
        if index >= len(self._periods):
            return None
        return self._periods[index]

    def changes_between(self, start: float, end: float) -> Sequence[TariffPeriod]:
        """Tariff changes with ``start < period.start <= end``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        lo = bisect.bisect_right(self._starts, start)
        hi = bisect.bisect_right(self._starts, end)
        return tuple(self._periods[lo:hi])
