"""Wattmeter simulation and energy accounting.

Grid'5000's Lyon site instruments every node with an external Omegawatt
wattmeter that reports one power sample per second; the paper averages
"more than 6,000 measurements" to characterise a node and integrates the
samples into energy figures (Section IV).  This module reproduces that
energy-sensing substrate:

* :class:`Wattmeter` samples a set of nodes at a fixed period (default
  1 s) when the simulation clock advances, producing per-node power traces.
* :class:`EnergyLog` holds the resulting samples and integrates them into
  joules, per node, per cluster and for the whole platform.

The simulation engine drives the wattmeter by calling
:meth:`Wattmeter.advance_to` whenever simulated time moves forward, which
keeps the sampling independent from the scheduling logic — exactly like an
external meter.

This polling path is O(nodes × simulated-seconds) and is no longer the
production accounting: :mod:`repro.infrastructure.energy` integrates the
same piecewise-constant power in O(state-changes).  The wattmeter is kept
as the measurement-level *reference* implementation — the equivalence
property tests and ``tools/bench_kernel.py`` run it side by side with the
segment accountant (``MiddlewareSimulation(..., energy_mode="polling")``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.infrastructure.node import Node
from repro.util.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True, slots=True)
class PowerSample:
    """One power reading: ``node`` drew ``watts`` at simulated ``time``."""

    time: float
    node: str
    cluster: str
    watts: float


class EnergyLog:
    """Accumulates power samples and integrates them into energy."""

    def __init__(self, sample_period: float) -> None:
        ensure_positive(sample_period, "sample_period")
        self.sample_period = sample_period
        self._samples: list[PowerSample] = []
        self._energy_by_node: dict[str, float] = defaultdict(float)
        self._energy_by_cluster: dict[str, float] = defaultdict(float)
        self._node_clusters: dict[str, str] = {}
        # Per-node (time, watts) rows, built lazily on the first per-node
        # query and invalidated by record(): per-node queries then cost
        # O(own samples) instead of re-scanning every node's samples.
        self._rows_by_node: dict[str, list[tuple[float, float]]] | None = None

    def record(self, sample: PowerSample) -> None:
        """Append one sample; its energy contribution is ``watts × period``."""
        self._samples.append(sample)
        joules = sample.watts * self.sample_period
        self._energy_by_node[sample.node] += joules
        self._energy_by_cluster[sample.cluster] += joules
        self._node_clusters[sample.node] = sample.cluster
        self._rows_by_node = None

    # -- energy queries -------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Total integrated energy over all nodes (J)."""
        return sum(self._energy_by_node.values())

    def energy_of_node(self, node: str) -> float:
        """Integrated energy of one node (J); 0.0 if never sampled."""
        return self._energy_by_node.get(node, 0.0)

    def energy_by_node(self) -> Mapping[str, float]:
        """Integrated energy per node (J)."""
        return dict(self._energy_by_node)

    def energy_of_cluster(self, cluster: str) -> float:
        """Integrated energy of one cluster (J); 0.0 if never sampled."""
        return self._energy_by_cluster.get(cluster, 0.0)

    def energy_by_cluster(self) -> Mapping[str, float]:
        """Integrated energy per cluster (J)."""
        return dict(self._energy_by_cluster)

    # -- trace queries ----------------------------------------------------------
    @property
    def sample_count(self) -> int:
        """Number of recorded samples (O(1); ``samples`` copies them all)."""
        return len(self._samples)

    @property
    def samples(self) -> Sequence[PowerSample]:
        """All recorded samples in chronological order."""
        return tuple(self._samples)

    def _rows_for(self, node: str) -> list[tuple[float, float]]:
        if self._rows_by_node is None:
            index: dict[str, list[tuple[float, float]]] = defaultdict(list)
            for sample in self._samples:
                index[sample.node].append((sample.time, sample.watts))
            self._rows_by_node = dict(index)
        return self._rows_by_node.get(node, [])

    def power_trace(self, node: str | None = None) -> np.ndarray:
        """Return a ``(n, 2)`` array of ``(time, watts)`` samples.

        With ``node=None`` the platform-wide power is returned: samples that
        share a timestamp are summed.  Per-node traces read a lazily built
        per-node index (O(own samples) after one O(all samples) build).
        """
        if node is not None:
            rows = self._rows_for(node)
            return np.asarray(rows, dtype=float).reshape(-1, 2)
        totals: dict[float, float] = defaultdict(float)
        for sample in self._samples:
            totals[sample.time] += sample.watts
        rows = sorted(totals.items())
        return np.asarray(rows, dtype=float).reshape(-1, 2)

    def mean_power(self, node: str) -> float:
        """Average of the recorded power samples for ``node`` (W)."""
        trace = self.power_trace(node)
        if trace.size == 0:
            return 0.0
        return float(trace[:, 1].mean())


class Wattmeter:
    """Samples a collection of nodes at a fixed period.

    Parameters
    ----------
    nodes:
        Nodes to monitor.
    sample_period:
        Seconds between samples (1.0 reproduces the Omegawatt setup).
    start_time:
        Simulated time of the first sample.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        *,
        sample_period: float = 1.0,
        start_time: float = 0.0,
    ) -> None:
        ensure_positive(sample_period, "sample_period")
        ensure_non_negative(start_time, "start_time")
        self._nodes: list[Node] = list(nodes)
        self.sample_period = sample_period
        self.log = EnergyLog(sample_period)
        self._next_sample_time = start_time
        self._last_advance = start_time

    @property
    def next_sample_time(self) -> float:
        """Simulated time at which the next sample will be taken."""
        return self._next_sample_time

    @property
    def monitored_nodes(self) -> Sequence[Node]:
        """Nodes monitored by this wattmeter."""
        return tuple(self._nodes)

    def advance_to(self, time: float) -> int:
        """Advance simulated time to ``time``, sampling at every period tick.

        Returns the number of sampling instants processed.  Power values are
        read from the nodes' *current* state, so callers must advance the
        wattmeter before mutating node state at ``time``.
        """
        if time < self._last_advance:
            raise ValueError(
                f"wattmeter cannot go backwards: {time} < {self._last_advance}"
            )
        ticks = 0
        while self._next_sample_time <= time:
            sample_time = self._next_sample_time
            for node in self._nodes:
                self.log.record(
                    PowerSample(
                        time=sample_time,
                        node=node.name,
                        cluster=node.cluster,
                        watts=node.current_power(),
                    )
                )
            self._next_sample_time += self.sample_period
            ticks += 1
        self._last_advance = time
        return ticks
