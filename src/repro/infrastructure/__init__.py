"""Infrastructure substrate: servers, clusters, power, heat and electricity.

The paper evaluates its scheduler on Grid'5000 nodes instrumented with
external wattmeters.  This package provides the equivalent simulated
substrate: heterogeneous server models exposing exactly the observables the
scheduler consumes (FLOPS, core count, idle/peak/boot power, boot time),
1 Hz power sampling, a thermal environment and an electricity tariff
schedule.
"""

from repro.infrastructure.cluster import Cluster
from repro.infrastructure.electricity import (
    ElectricityCostSchedule,
    TariffPeriod,
    OFF_PEAK_1_COST,
    OFF_PEAK_2_COST,
    REGULAR_COST,
)
from repro.infrastructure.energy import (
    EnergyAccountant,
    EnergyReadout,
    PowerSegment,
    SegmentEnergyLog,
)
from repro.infrastructure.node import Node, NodeSpec, NodeState
from repro.infrastructure.platform import (
    Platform,
    grid5000_placement_platform,
    heterogeneity_platform,
    simulated_cluster_specs,
)
from repro.infrastructure.power_model import LinearPowerModel, PowerModel
from repro.infrastructure.thermal import ThermalEnvironment, ThermalEvent
from repro.infrastructure.wattmeter import EnergyLog, Wattmeter

__all__ = [
    "Cluster",
    "ElectricityCostSchedule",
    "TariffPeriod",
    "REGULAR_COST",
    "OFF_PEAK_1_COST",
    "OFF_PEAK_2_COST",
    "Node",
    "NodeSpec",
    "NodeState",
    "Platform",
    "grid5000_placement_platform",
    "heterogeneity_platform",
    "simulated_cluster_specs",
    "LinearPowerModel",
    "PowerModel",
    "ThermalEnvironment",
    "ThermalEvent",
    "EnergyLog",
    "Wattmeter",
    "EnergyAccountant",
    "EnergyReadout",
    "PowerSegment",
    "SegmentEnergyLog",
]
