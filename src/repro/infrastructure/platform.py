"""Platform model and experiment presets.

A :class:`Platform` is the whole infrastructure visible to the middleware:
several clusters plus a node index.  The module also provides the concrete
platform configurations used by the paper's evaluation:

* :func:`grid5000_placement_platform` — the 12-SeD deployment of Table I
  (4 Orion, 4 Taurus, 4 Sagittaire nodes) used for the workload-placement
  experiment (Figures 2–5, Table II).
* :func:`heterogeneity_platform` — the platforms of the GreenPerf
  heterogeneity study (Figures 6 and 7), optionally extended with the Sim1
  and Sim2 clusters of Table III.

The absolute power and FLOPS figures below are derived from the public
Grid'5000 hardware descriptions of the Lyon site (Orion and Taurus are
Xeon E5-2630 nodes, Sagittaire are 2006-era dual Opteron 250 nodes) and
from the paper's Table III.  They are inputs to the simulation, not claims
about the original testbed; only their ordering and rough ratios matter
for reproducing the paper's conclusions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.infrastructure.cluster import Cluster
from repro.infrastructure.node import Node, NodeSpec, NodeState

#: FLOP cost of the paper's unit task: "1e8 successive additions".
UNIT_TASK_FLOP = 1.0e8

#: Per-core sustained rates (FLOP/s).  Orion is the fastest per core
#: (recent Xeons with a slightly higher turbo bin), Taurus is nearly as
#: fast but draws noticeably less power (no GPU), Sagittaire is an old
#: dual-single-core Opteron machine: slow and power hungry while idle.
_ORION_FLOPS_PER_CORE = 2.50e9
_TAURUS_FLOPS_PER_CORE = 2.30e9
_SAGITTAIRE_FLOPS_PER_CORE = 1.20e9

#: Node power figures (W).  Orion nodes carry accelerators that idle hot and
#: draw heavily under load, which is what makes Taurus the energy-efficient
#: choice for CPU-bound tasks despite nearly identical CPUs; Sagittaire is a
#: 2006-era machine whose idle draw is close to its peak (the "nodes are not
#: energy proportional" observation of Section II-B).
_ORION_IDLE, _ORION_PEAK = 230.0, 480.0
_TAURUS_IDLE, _TAURUS_PEAK = 95.0, 190.0
_SAGITTAIRE_IDLE, _SAGITTAIRE_PEAK = 215.0, 340.0

#: Boot characteristics shared by all physical nodes.
_BOOT_TIME_S = 120.0
_BOOT_POWER_FRACTION = 0.75


def orion_spec(index: int = 0) -> NodeSpec:
    """Spec of one Orion node (2 × 6 cores @ 2.30 GHz, 32 GB, GPU-equipped)."""
    return NodeSpec(
        name=f"orion-{index}",
        cluster="orion",
        cores=12,
        flops_per_core=_ORION_FLOPS_PER_CORE,
        idle_power=_ORION_IDLE,
        peak_power=_ORION_PEAK,
        boot_power=_BOOT_POWER_FRACTION * _ORION_PEAK,
        boot_time=_BOOT_TIME_S,
        memory_gb=32.0,
    )


def taurus_spec(index: int = 0) -> NodeSpec:
    """Spec of one Taurus node (2 × 6 cores @ 2.30 GHz, 32 GB)."""
    return NodeSpec(
        name=f"taurus-{index}",
        cluster="taurus",
        cores=12,
        flops_per_core=_TAURUS_FLOPS_PER_CORE,
        idle_power=_TAURUS_IDLE,
        peak_power=_TAURUS_PEAK,
        boot_power=_BOOT_POWER_FRACTION * _TAURUS_PEAK,
        boot_time=_BOOT_TIME_S,
        memory_gb=32.0,
    )


def sagittaire_spec(index: int = 0) -> NodeSpec:
    """Spec of one Sagittaire node (2 × 1 core @ 2.40 GHz, 2 GB)."""
    return NodeSpec(
        name=f"sagittaire-{index}",
        cluster="sagittaire",
        cores=2,
        flops_per_core=_SAGITTAIRE_FLOPS_PER_CORE,
        idle_power=_SAGITTAIRE_IDLE,
        peak_power=_SAGITTAIRE_PEAK,
        boot_power=_BOOT_POWER_FRACTION * _SAGITTAIRE_PEAK,
        boot_time=_BOOT_TIME_S,
        memory_gb=2.0,
    )


def simulated_cluster_specs() -> Mapping[str, NodeSpec]:
    """Specs of the Sim1 and Sim2 clusters of Table III.

    Table III only fixes the idle and peak power (Sim1: 190/230 W,
    Sim2: 160/190 W); performance is ours to choose.  Sim1 is a mid-power,
    mid-speed machine and Sim2 a frugal but slow one, which is what
    genuinely widens the platform's heterogeneity (and makes the
    power-only and power/performance rankings diverge), as intended by the
    paper's second scenario.
    """
    return {
        "sim1": NodeSpec(
            name="sim1-0",
            cluster="sim1",
            cores=8,
            flops_per_core=1.80e9,
            idle_power=190.0,
            peak_power=230.0,
            boot_power=_BOOT_POWER_FRACTION * 230.0,
            boot_time=_BOOT_TIME_S,
            memory_gb=16.0,
        ),
        "sim2": NodeSpec(
            name="sim2-0",
            cluster="sim2",
            cores=4,
            flops_per_core=0.80e9,
            idle_power=160.0,
            peak_power=190.0,
            boot_power=_BOOT_POWER_FRACTION * 190.0,
            boot_time=_BOOT_TIME_S,
            memory_gb=8.0,
        ),
    }


class Platform:
    """The full infrastructure visible to the middleware."""

    def __init__(self, clusters: Iterable[Cluster]) -> None:
        self._clusters: list[Cluster] = list(clusters)
        names = [cluster.name for cluster in self._clusters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate cluster names in platform")
        self._node_index: dict[str, Node] = {}
        for cluster in self._clusters:
            for node in cluster:
                if node.name in self._node_index:
                    raise ValueError(f"duplicate node name {node.name!r} in platform")
                self._node_index[node.name] = node

    # -- containers --------------------------------------------------------
    @property
    def clusters(self) -> Sequence[Cluster]:
        """Clusters in declaration order."""
        return tuple(self._clusters)

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes of the platform, cluster by cluster."""
        return tuple(node for cluster in self._clusters for node in cluster)

    def __len__(self) -> int:
        return len(self._node_index)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def cluster(self, name: str) -> Cluster:
        """Look up a cluster by name."""
        for cluster in self._clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no cluster named {name!r}")

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    # -- aggregates ---------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total core count of the platform."""
        return sum(cluster.total_cores for cluster in self._clusters)

    def current_power(self) -> float:
        """Instantaneous power draw of the whole platform (W)."""
        return sum(cluster.current_power() for cluster in self._clusters)

    def available_nodes(self) -> Sequence[Node]:
        """All powered-on nodes."""
        return tuple(node for node in self.nodes if node.is_available)

    def power_by_cluster(self) -> Mapping[str, float]:
        """Instantaneous power draw per cluster (W)."""
        return {cluster.name: cluster.current_power() for cluster in self._clusters}


def grid5000_placement_platform(
    *,
    nodes_per_cluster: int = 4,
    initial_state: NodeState = NodeState.ON,
) -> Platform:
    """The 12-SeD platform of Table I (Orion ×4, Taurus ×4, Sagittaire ×4).

    The Master Agent and client nodes of Table I do not execute tasks and
    their consumption "was constant when executing the three algorithms"
    (Section IV-A), so they are omitted from the simulated platform.
    """
    return Platform(
        [
            Cluster.homogeneous(
                "orion", nodes_per_cluster, orion_spec(), initial_state=initial_state
            ),
            Cluster.homogeneous(
                "taurus", nodes_per_cluster, taurus_spec(), initial_state=initial_state
            ),
            Cluster.homogeneous(
                "sagittaire",
                nodes_per_cluster,
                sagittaire_spec(),
                initial_state=initial_state,
            ),
        ]
    )


def heterogeneity_platform(
    *,
    kinds: int = 2,
    nodes_per_cluster: int = 4,
    initial_state: NodeState = NodeState.ON,
) -> Platform:
    """Platforms for the GreenPerf heterogeneity study (Figures 6 and 7).

    ``kinds=2`` reproduces the low-heterogeneity scenario (two server types
    with similar specifications: Orion and Taurus, per Table I).  ``kinds=4``
    adds the simulated Sim1 and Sim2 clusters of Table III to increase the
    platform's heterogeneity.
    """
    if kinds not in (2, 3, 4):
        raise ValueError(f"kinds must be 2, 3 or 4, got {kinds}")
    clusters = [
        Cluster.homogeneous(
            "orion", nodes_per_cluster, orion_spec(), initial_state=initial_state
        ),
        Cluster.homogeneous(
            "taurus", nodes_per_cluster, taurus_spec(), initial_state=initial_state
        ),
    ]
    if kinds >= 3:
        sims = simulated_cluster_specs()
        clusters.append(
            Cluster.homogeneous(
                "sim1", nodes_per_cluster, sims["sim1"], initial_state=initial_state
            )
        )
    if kinds == 4:
        sims = simulated_cluster_specs()
        clusters.append(
            Cluster.homogeneous(
                "sim2", nodes_per_cluster, sims["sim2"], initial_state=initial_state
            )
        )
    return Platform(clusters)
