"""Minimal discrete-event simulation engine.

The engine keeps a priority queue of timestamped callbacks.  Everything in
the reproduction — request arrivals, task completions, node boots, the
Master Agent's periodic 10-minute status checks — is expressed as an event
scheduled on this engine, which keeps the middleware and scheduler code
free of any time-keeping logic.

Events at the same timestamp fire in FIFO order of scheduling, with an
optional integer ``priority`` to break ties deterministically (lower fires
first).  Determinism matters: the experiments must be exactly repeatable
for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.util.validation import ensure_non_negative

EventCallback = Callable[[], None]


@dataclass(order=True, frozen=True)
class ScheduledEvent:
    """Internal heap entry: ``(time, priority, sequence)`` orders events."""

    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False, hash=False)


class _EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_entry", "_cancelled")

    def __init__(self, entry: ScheduledEvent) -> None:
        self._entry = entry
        self._cancelled = False

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._entry.time

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._entry.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._cancelled = True


class SimulationEngine:
    """Event-driven simulation clock.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(self, *, start_time: float = 0.0) -> None:
        ensure_non_negative(start_time, "start_time")
        self._now = start_time
        self._heap: list[tuple[ScheduledEvent, _EventHandle]] = []
        self._sequence = itertools.count()
        self._processed = 0

    # -- clock -----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (s)."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Number of events fired so far."""
        return self._processed

    # -- scheduling ---------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> _EventHandle:
        """Schedule ``callback`` to fire at absolute simulated ``time``.

        ``time`` must not be in the past.  Returns a handle whose
        :meth:`~_EventHandle.cancel` method removes the event.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        entry = ScheduledEvent(
            time=time,
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        handle = _EventHandle(entry)
        heapq.heappush(self._heap, (entry, handle))
        return handle

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> _EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        ensure_non_negative(delay, "delay")
        return self.schedule(self._now + delay, callback, priority=priority, label=label)

    # -- execution -------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if none remain."""
        while self._heap:
            entry, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = entry.time
            entry.callback()
            self._processed += 1
            return True
        return False

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event queue is empty.

        ``until`` stops the clock once the next event would fire strictly
        after that time (the clock is advanced to ``until``).  ``max_events``
        bounds the number of callbacks fired, as a safety valve against
        runaway self-rescheduling.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            entry, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry.time > until:
                self._now = max(self._now, until)
                return
            self.step()
            fired += 1
        if until is not None:
            self._now = max(self._now, until)

    def peek_next_time(self) -> float | None:
        """Firing time of the next live event, or ``None`` if the queue is empty."""
        while self._heap:
            entry, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return entry.time
        return None
