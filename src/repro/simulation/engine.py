"""Minimal discrete-event simulation engine.

The engine keeps a priority queue of timestamped callbacks.  Everything in
the reproduction — request arrivals, task completions, node boots, the
Master Agent's periodic 10-minute status checks — is expressed as an event
scheduled on this engine, which keeps the middleware and scheduler code
free of any time-keeping logic.

Events at the same timestamp fire in FIFO order of scheduling, with an
optional integer ``priority`` to break ties deterministically (lower fires
first).  Determinism matters: the experiments must be exactly repeatable
for a given seed.

Heap entries are deliberately lean: one ``__slots__`` object per event
that is simultaneously the heap entry *and* the cancellation handle, and
callbacks take their arguments from an ``args`` tuple bound at scheduling
time — callers on hot paths (one arrival + one completion per task) can
schedule bound methods instead of allocating a closure per task.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Sequence

from repro.util.validation import ensure_non_negative

EventCallback = Callable[..., None]


class ScheduledEvent:
    """One pending event: heap entry and cancellation handle in one object.

    Ordered by ``(time, priority, sequence)``; ``sequence`` is unique, so
    the ordering is total and FIFO among equal ``(time, priority)``.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "args",
        "label",
        "cancelled",
        "_engine",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: EventCallback,
        args: Sequence,
        label: str,
        engine: "SimulationEngine | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self._engine = engine

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    @property
    def event_count(self) -> int:
        """How many logical events this heap entry carries (1 unless batched)."""
        return 1

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            self._engine = None
            engine._on_cancel(self)

    def _fire(self) -> int:
        """Invoke the callback(s); returns the number of logical events fired."""
        self.callback(*self.args)
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(t={self.time}, {self.label!r}{state})"


class BatchedEvent(ScheduledEvent):
    """Several same-instant logical events folded into one heap entry.

    A burst of arrivals at one timestamp shares a single heap push/pop;
    the callback fires once per item, in submission order, and each item
    counts as one logical event towards ``processed_events`` and
    ``pending_events``.  The batch fires atomically: cancelling it after
    the first item has fired has no effect.
    """

    __slots__ = ("items",)

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: EventCallback,
        items: tuple,
        label: str,
        engine: "SimulationEngine | None" = None,
    ) -> None:
        super().__init__(time, priority, sequence, callback, (), label, engine)
        self.items = items

    @property
    def event_count(self) -> int:
        return len(self.items)

    def _fire(self) -> int:
        callback = self.callback
        for item in self.items:
            callback(item)
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = " cancelled" if self.cancelled else ""
        return f"BatchedEvent(t={self.time}, n={len(self.items)}, {self.label!r}{state})"


class SimulationEngine:
    """Event-driven simulation clock.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(self, *, start_time: float = 0.0) -> None:
        ensure_non_negative(start_time, "start_time")
        self._now = start_time
        self._heap: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._pending = 0

    # -- clock -----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (s)."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events still queued.

        Cancelled events stop counting the moment they are cancelled (they
        stay in the heap as tombstones until popped, but they are no longer
        backlog); each item of a batched entry counts individually, so the
        figure is the true number of callbacks still to fire.
        """
        return self._pending

    def _on_cancel(self, entry: ScheduledEvent) -> None:
        """Bookkeeping hook called by a live event when it is cancelled."""
        self._pending -= entry.event_count

    @property
    def processed_events(self) -> int:
        """Number of events fired so far."""
        return self._processed

    # -- scheduling ---------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: EventCallback,
        *,
        args: Sequence = (),
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``.

        ``time`` must not be in the past.  Returns the event itself, whose
        :meth:`~ScheduledEvent.cancel` method removes it.
        """
        self._check_time(time)
        entry = ScheduledEvent(
            time, priority, next(self._sequence), callback, args, label, self
        )
        heapq.heappush(self._heap, entry)
        self._pending += 1
        return entry

    def schedule_many(
        self,
        time: float,
        callback: EventCallback,
        items: Sequence,
        *,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(item)`` for every item, as one heap entry.

        All items fire at the same ``time`` with the same ``priority``, in
        the order given — exactly as if each had been scheduled
        individually, back to back — but a burst of any size costs a single
        heap push/pop.  Each item still counts as one logical event for
        :attr:`pending_events` and :attr:`processed_events`, so metrics are
        identical to the unbatched formulation.
        """
        self._check_time(time)
        if not items:
            raise ValueError("schedule_many requires at least one item")
        entry = BatchedEvent(
            time, priority, next(self._sequence), callback, tuple(items), label, self
        )
        heapq.heappush(self._heap, entry)
        self._pending += entry.event_count
        return entry

    def _check_time(self, time: float) -> None:
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback,
        *,
        args: Sequence = (),
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        ensure_non_negative(delay, "delay")
        return self.schedule(
            self._now + delay, callback, args=args, priority=priority, label=label
        )

    # -- execution -------------------------------------------------------------------
    def step(self) -> int:
        """Fire the next pending heap entry.

        Returns the number of logical events fired (0 when none remain,
        ``len(items)`` for a batched entry) — truthy exactly when an event
        fired, so existing ``while engine.step():`` loops keep working.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry._engine = None  # late cancels must not decrement again
            count = entry.event_count
            self._pending -= count
            fired = entry._fire()
            self._processed += fired
            return fired
        return 0

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event queue is empty.

        ``until`` stops the clock once the next event would fire strictly
        after that time (the clock is advanced to ``until``).  ``max_events``
        bounds the number of callbacks fired, as a safety valve against
        runaway self-rescheduling (a batched entry fires atomically, so the
        bound may be overshot by the tail of one batch).
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry.time > until:
                self._now = max(self._now, until)
                return
            fired += self.step()
        if until is not None:
            self._now = max(self._now, until)

    def peek_next_time(self) -> float | None:
        """Firing time of the next live event, or ``None`` if the queue is empty."""
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            return entry.time
        return None
