"""Per-node task queues and waiting-time estimation.

The paper's score function (Eq. 4) needs ``w_s``, the "estimation of tasks
waiting queue on server s (seconds)".  Each SeD maintains a FIFO queue of
tasks that have been assigned to the node but have not started because all
cores are busy; the waiting-time estimate is derived from the work in the
queue and in flight divided by the node's processing capacity.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Mapping

from repro.infrastructure.node import Node
from repro.simulation.task import Task

#: Callback invoked after any mutation that can move a queue's
#: waiting-time estimate (enqueue, start, completion, crash drain).
QueueListener = Callable[[], None]


class NodeQueue:
    """FIFO queue of tasks assigned to one node but not yet running."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self._pending: Deque[Task] = deque()
        self._running_remaining_flop: dict[int, float] = {}
        self._listeners: list[QueueListener] = []

    # -- change notification ----------------------------------------------------
    def add_listener(self, listener: QueueListener) -> None:
        """Subscribe to queue mutations.

        ``listener()`` fires after every mutation that can change
        :meth:`waiting_time_estimate` — this is how the SeD's cached
        estimation vector is invalidated incrementally instead of being
        rebuilt on every request.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: QueueListener) -> None:
        """Unsubscribe a previously added listener (ValueError if absent)."""
        self._listeners.remove(listener)

    def _changed(self) -> None:
        for listener in self._listeners:
            listener()

    # -- queue operations -------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        """Append an assigned task to the waiting queue."""
        self._pending.append(task)
        if self._listeners:
            self._changed()

    def pop_next(self) -> Task | None:
        """Remove and return the oldest waiting task, or ``None`` if empty."""
        if not self._pending:
            return None
        task = self._pending.popleft()
        if self._listeners:
            self._changed()
        return task

    def mark_running(self, task: Task) -> None:
        """Record that ``task`` has started executing on the node."""
        self._running_remaining_flop[task.task_id] = task.flop
        if self._listeners:
            self._changed()

    def mark_completed(self, task: Task) -> None:
        """Record that ``task`` has finished executing on the node."""
        self._running_remaining_flop.pop(task.task_id, None)
        if self._listeners:
            self._changed()

    def forget_running(self, task: Task) -> None:
        """Drop a running task's bookkeeping without completing it.

        Used when the node crashes: the task did not finish, but it no
        longer occupies the node either.
        """
        self._running_remaining_flop.pop(task.task_id, None)
        if self._listeners:
            self._changed()

    def drain_pending(self) -> tuple[Task, ...]:
        """Remove and return every waiting task (oldest first).

        Used when the node crashes: a dead node's queue cannot start
        anything, so the driver takes the tasks back and requeues or
        fails them.
        """
        drained = tuple(self._pending)
        self._pending.clear()
        if self._listeners:
            self._changed()
        return drained

    # -- introspection -------------------------------------------------------------
    @property
    def pending_tasks(self) -> tuple[Task, ...]:
        """Tasks waiting for a core, oldest first."""
        return tuple(self._pending)

    @property
    def pending_count(self) -> int:
        """Number of waiting tasks."""
        return len(self._pending)

    @property
    def running_count(self) -> int:
        """Number of tasks currently executing."""
        return len(self._running_remaining_flop)

    @property
    def backlog_flop(self) -> float:
        """Total FLOPs waiting in the queue (not counting running tasks)."""
        return sum(task.flop for task in self._pending)

    def waiting_time_estimate(self) -> float:
        """Estimated delay (s) before a *new* task would start on this node.

        The estimate assumes the node keeps all cores busy: the waiting
        work (queued FLOPs plus an upper bound on the in-flight FLOPs) is
        divided by the node's aggregate throughput.  When free cores exist
        and nothing is queued, the estimate is zero — the new task starts
        immediately.
        """
        if self.node.free_cores > 0 and not self._pending:
            return 0.0
        outstanding = self.backlog_flop + sum(self._running_remaining_flop.values())
        return outstanding / self.node.spec.total_flops


class QueueSet:
    """The queues of every node of a platform, indexed by node name."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._queues: dict[str, NodeQueue] = {
            node.name: NodeQueue(node) for node in nodes
        }

    def __getitem__(self, node_name: str) -> NodeQueue:
        return self._queues[node_name]

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._queues

    def __len__(self) -> int:
        return len(self._queues)

    @property
    def queues(self) -> Mapping[str, NodeQueue]:
        """All queues, keyed by node name."""
        return dict(self._queues)

    def total_pending(self) -> int:
        """Number of waiting tasks across the platform."""
        return sum(queue.pending_count for queue in self._queues.values())

    def waiting_times(self) -> Mapping[str, float]:
        """Waiting-time estimate of every node (s)."""
        return {
            name: queue.waiting_time_estimate()
            for name, queue in self._queues.items()
        }
