"""Metric collection: makespan, energy, task distribution.

Table II reports makespan (s) and energy (J) per scheduling policy;
Figures 2–4 report the number of tasks executed per node; Figure 5 the
energy per cluster.  :class:`MetricsCollector` derives all of these from
the execution records and the platform energy log — any implementation of
the :class:`~repro.infrastructure.energy.EnergyReadout` surface (the
segment-based accountant log or the legacy polling wattmeter log).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.infrastructure.energy import EnergyReadout
from repro.simulation.task import TaskExecution


@dataclass(frozen=True)
class ExperimentMetrics:
    """Summary of one experiment run.

    Attributes
    ----------
    policy:
        Name of the scheduling policy that produced the run.
    makespan:
        Time between the first submission and the last completion (s).
    total_energy:
        Integrated platform energy over the run (J), from the wattmeter.
    task_count:
        Number of completed tasks.
    tasks_per_node:
        Completed-task count per node name (Figures 2–4).
    tasks_per_cluster:
        Completed-task count per cluster name.
    energy_per_cluster:
        Integrated energy per cluster (J) (Figure 5).
    mean_response_time:
        Average submission-to-completion latency (s).
    mean_queue_delay:
        Average waiting time before execution (s).
    """

    policy: str
    makespan: float
    total_energy: float
    task_count: int
    tasks_per_node: Mapping[str, int] = field(default_factory=dict)
    tasks_per_cluster: Mapping[str, int] = field(default_factory=dict)
    energy_per_cluster: Mapping[str, float] = field(default_factory=dict)
    mean_response_time: float = 0.0
    mean_queue_delay: float = 0.0

    @property
    def energy_per_task(self) -> float:
        """Average energy per completed task (J); ``nan`` with zero tasks."""
        if self.task_count == 0:
            return float("nan")
        return self.total_energy / self.task_count

    @property
    def throughput(self) -> float:
        """Completed tasks per second of makespan; ``nan`` for zero makespan."""
        if self.makespan == 0:
            return float("nan")
        return self.task_count / self.makespan


class MetricsCollector:
    """Accumulates task execution records and produces :class:`ExperimentMetrics`."""

    def __init__(self, policy: str = "unknown") -> None:
        self.policy = policy
        self._executions: list[TaskExecution] = []
        self._first_submission: float | None = None
        self._last_completion: float | None = None

    def record_execution(self, execution: TaskExecution) -> None:
        """Add one completed task execution."""
        self._executions.append(execution)
        if (
            self._first_submission is None
            or execution.submitted_at < self._first_submission
        ):
            self._first_submission = execution.submitted_at
        if self._last_completion is None or execution.completed_at > self._last_completion:
            self._last_completion = execution.completed_at

    # -- raw accessors -------------------------------------------------------------
    @property
    def executions(self) -> Sequence[TaskExecution]:
        """All recorded executions in insertion order."""
        return tuple(self._executions)

    @property
    def task_count(self) -> int:
        """Number of recorded executions."""
        return len(self._executions)

    @property
    def makespan(self) -> float:
        """First-submission to last-completion span (s); 0.0 when empty."""
        if self._first_submission is None or self._last_completion is None:
            return 0.0
        return self._last_completion - self._first_submission

    def tasks_per_node(self) -> Mapping[str, int]:
        """Completed-task histogram keyed by node name."""
        counts: dict[str, int] = defaultdict(int)
        for execution in self._executions:
            counts[execution.node] += 1
        return dict(counts)

    def tasks_per_cluster(self) -> Mapping[str, int]:
        """Completed-task histogram keyed by cluster name."""
        counts: dict[str, int] = defaultdict(int)
        for execution in self._executions:
            counts[execution.cluster] += 1
        return dict(counts)

    def response_times(self) -> np.ndarray:
        """Array of submission-to-completion latencies (s)."""
        return np.array([e.response_time for e in self._executions], dtype=float)

    def queue_delays(self) -> np.ndarray:
        """Array of pre-execution waiting times (s)."""
        return np.array([e.queue_delay for e in self._executions], dtype=float)

    # -- summary ----------------------------------------------------------------------
    def summarize(self, energy_log: EnergyReadout | None = None) -> ExperimentMetrics:
        """Build the experiment summary, pulling energy from ``energy_log``.

        Without an energy log, energy figures fall back to the sum of the
        per-task marginal energies (which excludes idle draw).
        """
        if energy_log is not None:
            total_energy = energy_log.total_energy
            energy_per_cluster = dict(energy_log.energy_by_cluster())
        else:
            total_energy = sum(e.energy for e in self._executions)
            per_cluster: dict[str, float] = defaultdict(float)
            for execution in self._executions:
                per_cluster[execution.cluster] += execution.energy
            energy_per_cluster = dict(per_cluster)

        response = self.response_times()
        delays = self.queue_delays()
        return ExperimentMetrics(
            policy=self.policy,
            makespan=self.makespan,
            total_energy=total_energy,
            task_count=self.task_count,
            tasks_per_node=self.tasks_per_node(),
            tasks_per_cluster=self.tasks_per_cluster(),
            energy_per_cluster=energy_per_cluster,
            mean_response_time=float(response.mean()) if response.size else 0.0,
            mean_queue_delay=float(delays.mean()) if delays.size else 0.0,
        )
