"""Task model.

The paper's unit of work is "a CPU-bound problem which consists in 1e8
successive additions" (Section IV-A), i.e. a single-core task whose cost
is expressed in floating-point operations (``n_i`` in the paper's
notation).  Tasks are independent and carry no priority (Section III-A);
a user-level preference value may accompany a request (Section III-B).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.util.validation import ensure_in_range, ensure_non_negative, ensure_positive

#: FLOP cost of the paper's unit task.
DEFAULT_TASK_FLOP = 1.0e8

_task_counter = itertools.count()


def _next_task_id() -> int:
    return next(_task_counter)


class TaskState(enum.Enum):
    """Lifecycle of a task inside the simulation."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    FAILED = "failed"


@dataclass
class Task:
    """An independent, single-core, CPU-bound task.

    Parameters
    ----------
    flop:
        Number of floating-point operations (``n_i``).
    arrival_time:
        Simulated time at which the client submits the request (s).
    client:
        Identifier of the submitting client (used in multi-client scenarios).
    user_preference:
        The request's ``Preference_user`` value in ``[-1, 1]``
        (−1: maximise performance, 0: no preference, +1: maximise energy
        efficiency).  See Section III-B.
    service:
        Name of the requested computational service; the default matches
        the paper's single CPU-bound problem.
    cores:
        Width of the job in cores.  The middleware placement path runs
        every task on one core (the paper's model); trace-derived tasks
        keep their SWF ``allocated_processors`` here so the queue-family
        backfill policies (:mod:`repro.policy.queue`) can plan with real
        widths.
    requested_runtime:
        The user-declared wall limit in seconds (SWF ``requested_time``),
        or ``None`` when unknown.  Only consumed by the queue family —
        backfill plans against the limit, not the true runtime.
    """

    flop: float = DEFAULT_TASK_FLOP
    arrival_time: float = 0.0
    client: str = "client-0"
    user_preference: float = 0.0
    service: str = "cpu-burn"
    cores: int = 1
    requested_runtime: float | None = None
    task_id: int = field(default_factory=_next_task_id)
    state: TaskState = field(default=TaskState.SUBMITTED, compare=False)

    def __post_init__(self) -> None:
        ensure_positive(self.flop, "flop")
        ensure_non_negative(self.arrival_time, "arrival_time")
        ensure_in_range(self.user_preference, "user_preference", -1.0, 1.0)
        if not self.service:
            raise ValueError("service must be a non-empty string")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.requested_runtime is not None:
            ensure_non_negative(self.requested_runtime, "requested_runtime")

    def duration_on(self, flops_per_core: float) -> float:
        """Execution time (s) on a core sustaining ``flops_per_core`` FLOP/s."""
        ensure_positive(flops_per_core, "flops_per_core")
        return self.flop / flops_per_core


@dataclass(frozen=True)
class TaskExecution:
    """Completed execution record of a task on a node.

    ``queue_delay`` is the time spent waiting between submission and the
    start of execution; ``energy`` is the marginal energy attributed to the
    task (dynamic power above idle integrated over the execution), which is
    what the dynamic GreenPerf estimator consumes.
    """

    task_id: int
    node: str
    cluster: str
    submitted_at: float
    started_at: float
    completed_at: float
    energy: float

    def __post_init__(self) -> None:
        if self.started_at < self.submitted_at:
            raise ValueError("a task cannot start before it is submitted")
        if self.completed_at < self.started_at:
            raise ValueError("a task cannot complete before it starts")
        ensure_non_negative(self.energy, "energy")

    @property
    def duration(self) -> float:
        """Wall-clock execution time (s)."""
        return self.completed_at - self.started_at

    @property
    def queue_delay(self) -> float:
        """Time spent waiting before execution (s)."""
        return self.started_at - self.submitted_at

    @property
    def response_time(self) -> float:
        """Submission-to-completion latency (s)."""
        return self.completed_at - self.submitted_at

    @property
    def mean_power(self) -> float:
        """Average marginal power over the execution (W); 0.0 for zero duration."""
        if self.duration == 0:
            return 0.0
        return self.energy / self.duration
