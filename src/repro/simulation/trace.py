"""Execution tracing.

Every interesting simulation occurrence (task submitted / scheduled /
started / completed, node booted / powered off, candidate-set change,
energy event) is appended to an :class:`ExecutionTrace`.  Experiments and
tests consume the trace to rebuild the paper's figures (task distribution
per node, candidate-count time series) without instrumenting the
scheduling code paths themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: ``kind`` happened at simulated ``time``.

    ``details`` carries kind-specific fields (task id, node name, candidate
    count, ...), kept as a plain mapping so traces are easy to serialise.
    """

    time: float
    kind: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


class ExecutionTrace:
    """Append-only list of :class:`TraceEvent` with simple query helpers."""

    #: Well-known event kinds emitted by the middleware driver.
    TASK_SUBMITTED = "task_submitted"
    TASK_SCHEDULED = "task_scheduled"
    TASK_STARTED = "task_started"
    TASK_COMPLETED = "task_completed"
    TASK_REJECTED = "task_rejected"
    TASK_FAILED = "task_failed"
    TASK_REQUEUED = "task_requeued"
    NODE_BOOT_STARTED = "node_boot_started"
    NODE_FAILED = "node_failed"
    NODE_RECOVERED = "node_recovered"
    NODE_BOOT_COMPLETED = "node_boot_completed"
    NODE_POWERED_OFF = "node_powered_off"
    CANDIDATES_CHANGED = "candidates_changed"
    ENERGY_EVENT = "energy_event"
    STATUS_CHECK = "status_check"

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, time: float, kind: str, **details: Any) -> TraceEvent:
        """Append a record and return it."""
        event = TraceEvent(time=time, kind=kind, details=dict(details))
        self._events.append(event)
        return event

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> Sequence[TraceEvent]:
        """All records in insertion (chronological) order."""
        return tuple(self._events)

    def of_kind(self, kind: str) -> Sequence[TraceEvent]:
        """All records of one kind."""
        return tuple(event for event in self._events if event.kind == kind)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> Sequence[TraceEvent]:
        """All records matching ``predicate``."""
        return tuple(event for event in self._events if predicate(event))

    def last_of_kind(self, kind: str) -> TraceEvent | None:
        """Most recent record of one kind, or ``None``."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def count_by(self, kind: str, key: str) -> Mapping[Any, int]:
        """Histogram of ``details[key]`` over records of ``kind``.

        Used, e.g., to count completed tasks per node (Figures 2–4).
        """
        counts: dict[Any, int] = {}
        for event in self._events:
            if event.kind != kind:
                continue
            value = event.details.get(key)
            counts[value] = counts.get(value, 0) + 1
        return counts

    def time_series(self, kind: str, key: str) -> Sequence[tuple[float, Any]]:
        """Chronological ``(time, details[key])`` pairs for records of ``kind``."""
        return tuple(
            (event.time, event.details.get(key))
            for event in self._events
            if event.kind == kind
        )
