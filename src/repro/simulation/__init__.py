"""Discrete-event simulation substrate.

The paper's placement experiment runs on real hardware; its heterogeneity
study already "uses a simulation to manage the level of heterogeneity"
(Section IV-B).  This package provides the simulation engine both reuse:
an event-driven clock, task and queue models, execution tracing and metric
collection (makespan, energy, per-node task counts).
"""

from repro.simulation.engine import ScheduledEvent, SimulationEngine
from repro.simulation.metrics import ExperimentMetrics, MetricsCollector
from repro.simulation.queueing import NodeQueue, QueueSet
from repro.simulation.task import Task, TaskExecution, TaskState
from repro.simulation.trace import ExecutionTrace, TraceEvent

__all__ = [
    "ScheduledEvent",
    "SimulationEngine",
    "ExperimentMetrics",
    "MetricsCollector",
    "NodeQueue",
    "QueueSet",
    "Task",
    "TaskExecution",
    "TaskState",
    "ExecutionTrace",
    "TraceEvent",
]
