"""Single source of truth for the package version.

``_VERSION`` is the literal the build backend reads (see
``[tool.setuptools.dynamic]`` in ``pyproject.toml``).  At runtime
:data:`__version__` prefers the installed distribution's metadata — so
``repro --version`` reports what pip actually installed — and falls back
to the literal for ``PYTHONPATH=src`` checkouts that were never
installed.
"""

from importlib.metadata import PackageNotFoundError, version

_VERSION = "1.1.0"

try:
    __version__ = version("repro-green-scheduling")
except PackageNotFoundError:  # pragma: no cover - uninstalled source checkout
    __version__ = _VERSION
