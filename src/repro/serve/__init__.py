"""repro.serve — the long-lived placement service.

The serving layer turns the reproduction's middleware stack into a
daemon: :class:`ServeState` keeps one assembled platform + hierarchy
resident and advances it on a virtual clock, :class:`PlacementService`
exposes it over HTTP/JSON with per-tenant admission control and
micro-batched scoring, and :func:`replay_trace` fires recorded traces at
it in real or accelerated time.  See ``docs/SERVING.md``.
"""

from repro.serve.admission import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.protocol import ProtocolError, SubmitRequest, SubmitResponse
from repro.serve.replay import ReplayReport, load_trace_tasks, replay_tasks, replay_trace
from repro.serve.service import PlacementService
from repro.serve.state import PlacementDecision, ServeState

__all__ = [
    "ADMITTED",
    "REJECTED",
    "SHED",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "ProtocolError",
    "SubmitRequest",
    "SubmitResponse",
    "ReplayReport",
    "load_trace_tasks",
    "replay_tasks",
    "replay_trace",
    "PlacementService",
    "PlacementDecision",
    "ServeState",
]
