"""Trace replay client for the placement daemon.

Fires a workload trace (CSV or raw SWF, via
:class:`~repro.workload.traces.TraceWorkload`) at a running
:class:`~repro.serve.service.PlacementService` in **real or accelerated
time**:

* ``speed=None`` (default) — as fast as the socket allows.  Every
  submission still carries its trace arrival time as the virtual
  timestamp, so the daemon makes exactly the placements a real-time
  replay (or a closed-loop simulation of the same trace) would make;
* ``speed=s`` — pace submissions on the wall clock at ``s`` virtual
  seconds per wall second (``speed=1.0`` is real time).

The client keeps **one connection and preserves trace order** with
windowed pipelining: up to ``window`` requests are on the wire before
the oldest response is awaited.  Submission order is what the
determinism guarantee is stated over; parallel connections would trade
it away for throughput.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.serve.protocol import (
    SubmitRequest,
    SubmitResponse,
    read_response,
    render_request,
)
from repro.simulation.task import Task
from repro.workload.traces import TraceWorkload


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one replay run, in submission order."""

    sent: int
    accepted: int
    rejected: int
    shed: int
    unplaced: int  # admitted by the gates but rejected by the scheduler
    wall_seconds: float
    responses: tuple[SubmitResponse, ...] = field(repr=False, default=())

    @property
    def nodes(self) -> tuple[str | None, ...]:
        """Elected node per submission (``None`` when not placed)."""
        return tuple(response.node for response in self.responses)

    @property
    def requests_per_second(self) -> float:
        """Wire throughput of the replay (submissions per wall second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sent / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "sent": self.sent,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "unplaced": self.unplaced,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": self.requests_per_second,
        }


def load_trace_tasks(
    path: str, *, limit: int | None = None, repeat: int = 1
) -> tuple[Task, ...]:
    """The replayable tasks of the trace at ``path``, in arrival order.

    ``repeat`` concatenates the trace with itself, shifting each copy by
    the trace's span — the cheap way to stretch a small fixture into a
    longer request stream (the CI smoke run replays ``mini.swf`` this
    way).  ``limit`` then truncates to the first ``limit`` tasks.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    base = tuple(TraceWorkload.from_file(path).generate())
    tasks: list[Task] = list(base)
    if repeat > 1 and base:
        span = base[-1].arrival_time + 1.0
        for cycle in range(1, repeat):
            for task in base:
                tasks.append(
                    Task(
                        flop=task.flop,
                        arrival_time=task.arrival_time + cycle * span,
                        client=task.client,
                        user_preference=task.user_preference,
                        service=task.service,
                    )
                )
    if limit is not None:
        tasks = tasks[:limit]
    return tuple(tasks)


def _submission(task: Task, tenant: str | None) -> SubmitRequest:
    return SubmitRequest(
        tenant=tenant or task.client,
        flop=task.flop,
        time=task.arrival_time,
        client=task.client,
        service=task.service,
        preference=task.user_preference,
    )


async def replay_tasks(
    tasks,
    *,
    host: str = "127.0.0.1",
    port: int,
    speed: float | None = None,
    window: int = 8,
    tenant: str | None = None,
    shutdown: bool = False,
) -> ReplayReport:
    """Fire ``tasks`` at the daemon on ``host:port``; see module docstring.

    ``tenant=None`` submits each task under its trace user (``task.client``);
    a string submits the whole replay under one tenant.  ``shutdown=True``
    sends ``POST /shutdown`` after the last response.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if speed is not None and speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.open_connection(host, port)
    responses: list[SubmitResponse] = []
    started = loop.time()
    try:
        in_flight = 0
        base_time = tasks[0].arrival_time if tasks else 0.0
        for task in tasks:
            if speed is not None:
                due = started + (task.arrival_time - base_time) / speed
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            writer.write(
                render_request("POST", "/submit", _submission(task, tenant).to_json())
            )
            await writer.drain()
            in_flight += 1
            if in_flight >= window:
                _status, body = await read_response(reader)
                responses.append(SubmitResponse.from_json(body))
                in_flight -= 1
        while in_flight:
            _status, body = await read_response(reader)
            responses.append(SubmitResponse.from_json(body))
            in_flight -= 1
        if shutdown:
            writer.write(render_request("POST", "/shutdown"))
            await writer.drain()
            await read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    wall = loop.time() - started
    statuses = [response.status for response in responses]
    return ReplayReport(
        sent=len(responses),
        accepted=statuses.count("accepted"),
        rejected=statuses.count("rejected"),
        shed=statuses.count("shed"),
        unplaced=sum(
            1 for response in responses if response.accepted and response.node is None
        ),
        wall_seconds=wall,
        responses=tuple(responses),
    )


async def replay_trace(
    path: str,
    *,
    host: str = "127.0.0.1",
    port: int,
    speed: float | None = None,
    window: int = 8,
    limit: int | None = None,
    repeat: int = 1,
    tenant: str | None = None,
    shutdown: bool = False,
) -> ReplayReport:
    """Load the trace at ``path`` and replay it; see :func:`replay_tasks`."""
    tasks = load_trace_tasks(path, limit=limit, repeat=repeat)
    return await replay_tasks(
        tasks,
        host=host,
        port=port,
        speed=speed,
        window=window,
        tenant=tenant,
        shutdown=shutdown,
    )
