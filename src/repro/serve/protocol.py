"""Wire protocol of the placement service: JSON bodies over minimal HTTP/1.1.

The daemon and its clients speak plain HTTP with JSON bodies so that any
tool (``curl``, a load generator, the bundled replay client) can talk to
it, but the framing here is deliberately tiny — stdlib-only, persistent
connections, ``Content-Length`` bodies, no chunking — because the
container bakes no HTTP dependency in.  Both ends of the conversation
live in this module so the server and the replay client cannot drift
apart.

Endpoints
---------
``POST /submit``
    Body: a :class:`SubmitRequest` JSON object.  Responses: 200 with an
    ``accepted`` :class:`SubmitResponse`, 429 ``rejected`` (per-tenant
    quota exhausted, with ``retry_after``), 503 ``shed`` (service queue
    full), 400 on malformed bodies.
``GET /stats``
    Live counters: admission totals, per-tenant ledgers, placement and
    batch statistics, the virtual clock.
``GET /healthz``
    Liveness probe, ``{"status": "ok"}``.
``POST /shutdown``
    Graceful stop: the daemon finishes in-flight batches, answers, and
    exits its serve loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.simulation.task import Task

#: Reason phrases for the status codes the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: Admission status -> HTTP status code.
STATUS_CODES = {"accepted": 200, "rejected": 429, "shed": 503}

#: Hard cap on request bodies (a submit request is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A malformed request or response on the wire."""


@dataclass(frozen=True)
class SubmitRequest:
    """One task submission.

    ``time`` is the submission's *virtual* timestamp in seconds.  Replay
    clients set it to the trace arrival time (that is what makes an
    accelerated replay land on the same virtual clock as a real-time
    one); interactive clients may omit it, in which case the service
    stamps its current clock.
    """

    tenant: str
    flop: float
    time: float | None = None
    client: str | None = None
    service: str = "cpu-burn"
    preference: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ProtocolError("tenant must be a non-empty string")

    def to_task(self, *, arrival_time: float) -> Task:
        """The simulation task this submission describes."""
        return Task(
            flop=self.flop,
            arrival_time=arrival_time,
            client=self.client or self.tenant,
            user_preference=self.preference,
            service=self.service,
        )

    def to_json(self) -> dict:
        payload: dict = {
            "tenant": self.tenant,
            "flop": self.flop,
            "service": self.service,
            "preference": self.preference,
        }
        if self.time is not None:
            payload["time"] = self.time
        if self.client is not None:
            payload["client"] = self.client
        return payload

    @classmethod
    def from_json(cls, payload: object) -> "SubmitRequest":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"submit body must be a JSON object, got {type(payload).__name__}")
        try:
            request = cls(
                tenant=str(payload["tenant"]),
                flop=float(payload["flop"]),
                time=None if payload.get("time") is None else float(payload["time"]),
                client=None if payload.get("client") is None else str(payload["client"]),
                service=str(payload.get("service", "cpu-burn")),
                preference=float(payload.get("preference", 0.0)),
            )
        except KeyError as missing:
            raise ProtocolError(f"submit body is missing field {missing.args[0]!r}") from None
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"malformed submit body: {error}") from None
        return request


@dataclass(frozen=True)
class SubmitResponse:
    """The service's answer to one submission."""

    status: str  # "accepted" | "rejected" | "shed"
    time: float = 0.0  # virtual time the decision was made at
    node: str | None = None  # elected node ("accepted" with a placement)
    task_id: int | None = None
    reason: str = ""
    retry_after: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.status == "accepted"

    def to_json(self) -> dict:
        payload: dict = {"status": self.status, "time": self.time}
        if self.node is not None:
            payload["node"] = self.node
        if self.task_id is not None:
            payload["task_id"] = self.task_id
        if self.reason:
            payload["reason"] = self.reason
        if self.retry_after:
            payload["retry_after"] = self.retry_after
        return payload

    @classmethod
    def from_json(cls, payload: object) -> "SubmitResponse":
        if not isinstance(payload, Mapping) or "status" not in payload:
            raise ProtocolError("response body must be a JSON object with a 'status'")
        return cls(
            status=str(payload["status"]),
            time=float(payload.get("time", 0.0)),
            node=None if payload.get("node") is None else str(payload["node"]),
            task_id=None if payload.get("task_id") is None else int(payload["task_id"]),
            reason=str(payload.get("reason", "")),
            retry_after=float(payload.get("retry_after", 0.0)),
        )


@dataclass(frozen=True)
class HttpRequest:
    """One parsed inbound HTTP request."""

    method: str
    path: str
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"body is not valid JSON: {error}") from None


async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()


async def _read_body(reader: asyncio.StreamReader, headers: Mapping[str, str]) -> bytes:
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"Content-Length {length} out of bounds")
    return await reader.readexactly(length) if length else b""


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one HTTP request; ``None`` on a cleanly closed connection."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {line!r}")
    method, path, _version = parts
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers)
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> tuple[int, object]:
    """Read one HTTP response; returns ``(status_code, decoded_json_body)``."""
    line = await reader.readline()
    if not line:
        raise ProtocolError("connection closed while awaiting a response")
    parts = line.decode("latin-1").split(maxsplit=2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ProtocolError(f"malformed status line {line!r}")
    status = int(parts[1])
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers)
    return status, (json.loads(body) if body else None)


def render_response(status: int, payload: object) -> bytes:
    """Serialise one JSON response with its framing headers."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1") + body


def render_request(method: str, path: str, payload: object | None = None) -> bytes:
    """Serialise one JSON request with its framing headers."""
    body = b""
    if payload is not None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: repro-serve\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1") + body
