"""Live platform state behind the placement service.

A :class:`ServeState` holds one assembled middleware stack — platform,
agent hierarchy, discrete-event engine, energy accountant — and keeps it
*resident* between requests instead of rebuilding it per run the way a
batch experiment does.  The daemon in :mod:`repro.serve.service` owns one
instance and funnels every admitted submission through
:meth:`place_batch`.

Virtual clock
-------------
The state advances the embedded engine to each submission's virtual
timestamp, so placements depend only on the *timestamps* the clients
send, never on wall-clock pacing.  That is the property the determinism
tests lean on: replaying a trace at 1000x acceleration (or as fast as
the sockets allow) produces bit-identical elections to the closed-loop
simulation of the same trace, because both walk the same event sequence
on the same virtual clock.

Event ordering
--------------
A closed-loop run schedules every arrival up front, so at equal
timestamps arrivals fire before the completions scheduled mid-run (FIFO
among equal time and priority).  A served arrival is scheduled *late* —
after the completions already in the heap — so at priority 0 it would
fire after a same-instant completion and diverge from the closed-loop
ordering.  Serve arrivals therefore use :data:`ARRIVAL_PRIORITY` (-1):
they beat same-time completions (priority 0) while still firing after
timeline fault events (also -1, but scheduled at setup and hence with
lower sequence numbers) — exactly the closed-loop order.

SeDs are built offering :data:`~repro.middleware.sed.WILDCARD_SERVICE`,
because a live daemon cannot enumerate the services of a request stream
it has not seen yet.  Elections are unaffected: in the closed-loop run
every SeD offers every service the workload requests, so the candidate
sets are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lab.components import PlatformSource, PolicySource, TimelineLike, resolve_timeline
from repro.middleware.driver import MiddlewareSimulation, SimulationResult
from repro.middleware.hierarchy import build_hierarchy
from repro.middleware.sed import WILDCARD_SERVICE
from repro.scenario.apply import apply_timeline
from repro.simulation.task import Task

#: Priority of served arrival events (see "Event ordering" above).
ARRIVAL_PRIORITY = -1


@dataclass(frozen=True)
class PlacementDecision:
    """The scheduler's answer for one served task."""

    task_id: int
    time: float  # virtual time the election happened at
    node: str | None  # None when no SeD could serve the request
    cluster: str | None = None

    @property
    def accepted(self) -> bool:
        """Whether the task was placed on a node."""
        return self.node is not None


class ServeState:
    """One resident middleware stack, advanced by submissions.

    Build it with :meth:`assemble` (from lab components) or wrap an
    existing :class:`MiddlewareSimulation` directly.
    """

    def __init__(self, simulation: MiddlewareSimulation) -> None:
        self._simulation = simulation
        self._decisions = 0

    @classmethod
    def assemble(
        cls,
        *,
        platform: PlatformSource | None = None,
        policy: PolicySource | None = None,
        timeline: TimelineLike = None,
        energy_mode: str = "quantized",
        trace_level: str = "full",
        base_temperature: float = 21.0,
        requeue_on_failure: bool = True,
    ) -> "ServeState":
        """Assemble a resident stack from lab components.

        Mirrors the middleware path of :meth:`repro.lab.session.LabSession.run`
        minus the workload (requests arrive over the wire) and minus
        provisioning (the planner's periodic check events would interleave
        with live arrivals on a schedule no client controls).
        """
        platform_source = platform or PlatformSource.table1(1)
        if platform_source.kind != "table1":
            raise ValueError(
                "the placement service runs the middleware backend; "
                "server-types platforms have no resident state to serve"
            )
        policy_source = policy or PolicySource()
        scheduler = policy_source.build()
        built = platform_source.build_platform()
        master, seds = build_hierarchy(
            built, scheduler=scheduler, services=(WILDCARD_SERVICE,)
        )
        simulation = MiddlewareSimulation(
            built,
            master,
            seds,
            policy_name=scheduler.name,
            energy_mode=energy_mode,
            trace_level=trace_level,
        )
        resolved = resolve_timeline(timeline)
        if resolved is not None:
            apply_timeline(
                simulation,
                resolved,
                base_temperature=base_temperature,
                requeue=requeue_on_failure,
            )
        return cls(simulation)

    # -- clock ------------------------------------------------------------------
    @property
    def simulation(self) -> MiddlewareSimulation:
        """The resident middleware stack."""
        return self._simulation

    @property
    def now(self) -> float:
        """Current virtual time (s)."""
        return self._simulation.engine.now

    @property
    def policy(self) -> str:
        """Name of the plug-in policy electing nodes."""
        return self._simulation.metrics.policy

    def advance_to(self, time: float) -> None:
        """Advance the virtual clock to ``time``, firing due events."""
        if time > self.now:
            self._simulation.engine.run(until=time)

    # -- placement ----------------------------------------------------------------
    def place_batch(self, tasks: Sequence[Task]) -> list[PlacementDecision]:
        """Elect a node for every task of one micro-batch, in order.

        Each task arrives at its own ``arrival_time``, clamped so the
        batch is monotone (a timestamp below the previous arrival or the
        current clock is lifted to it — virtual time cannot go
        backwards).  Events due between two arrivals (completions, faults)
        fire in between, exactly as they would in a closed-loop run.
        """
        engine = self._simulation.engine
        decisions: list[PlacementDecision | None] = [None] * len(tasks)
        at = engine.now
        for index, task in enumerate(tasks):
            at = max(at, task.arrival_time)
            engine.schedule(
                at,
                self._arrive,
                args=(task, decisions, index),
                priority=ARRIVAL_PRIORITY,
                label=f"serve-arrival-{task.task_id}",
            )
        engine.run(until=at)
        return decisions  # type: ignore[return-value]  # every slot was filled

    def _arrive(
        self, task: Task, decisions: list[PlacementDecision | None], index: int
    ) -> None:
        outcome = self._simulation.inject_task(task)
        self._decisions += 1
        if outcome.succeeded:
            sed = self._simulation.seds[outcome.elected]
            decisions[index] = PlacementDecision(
                task_id=task.task_id, time=self.now, node=sed.name, cluster=sed.cluster
            )
        else:
            decisions[index] = PlacementDecision(
                task_id=task.task_id, time=self.now, node=None
            )

    # -- lifecycle -----------------------------------------------------------------
    def drain(self) -> SimulationResult:
        """Run every pending event (completions included) and summarise.

        Called at daemon shutdown: the report carries the same metrics a
        batch run of the served workload would have produced.
        """
        return self._simulation.run()

    # -- introspection -------------------------------------------------------------
    @property
    def decisions(self) -> int:
        """Placement elections made so far (accepted or not)."""
        return self._decisions

    def snapshot(self) -> dict:
        """Live counters for the daemon's ``/stats`` endpoint."""
        simulation = self._simulation
        return {
            "time": self.now,
            "policy": self.policy,
            "decisions": self._decisions,
            "submitted": simulation.submitted_tasks,
            "completed": simulation.metrics.task_count,
            "running": simulation.running_tasks,
            "in_flight": simulation.in_flight_tasks,
            "rejected": simulation.rejected_tasks,
            "failed": simulation.failed_tasks,
            "nodes": {
                name: {
                    "state": sed.node.state.name.lower(),
                    "free_cores": sed.node.free_cores,
                    "queued": sed.queue.pending_count,
                }
                for name, sed in sorted(simulation.seds.items())
            },
        }
