"""The placement daemon: admission, micro-batching, and the HTTP front end.

:class:`PlacementService` is the long-lived process of the serving layer.
It owns one :class:`~repro.serve.state.ServeState` (the resident
middleware stack), one :class:`~repro.serve.admission.AdmissionController`
(the tenant gates) and one asyncio TCP server speaking the protocol of
:mod:`repro.serve.protocol`.

Request path
------------
Every ``POST /submit`` runs the admission gates synchronously — a
rejected or shed submission is answered immediately, without touching
the scheduler.  Admitted submissions are parked on a pending queue and
their connection awaits a future; a single **batcher** task drains
whatever accumulated into one :meth:`ServeState.place_batch` scoring
pass and resolves the futures.  Concurrency is the batching mechanism:
requests that arrive while a batch is being scored pile up and form the
next batch, so one scheduler pass serves many sockets (``batch_window``
adds an optional fixed accumulation delay on top).

The service never reads a wall clock.  Virtual time comes entirely from
the ``time`` field of the submissions (clamped monotone), which is what
makes an accelerated replay indistinguishable from a real-time one —
and the whole daemon deterministic under test.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.serve.admission import AdmissionController, SHED
from repro.serve.protocol import (
    STATUS_CODES,
    HttpRequest,
    ProtocolError,
    SubmitRequest,
    read_request,
    render_response,
)
from repro.serve.state import PlacementDecision, ServeState
from repro.simulation.task import Task


class PlacementService:
    """One daemon: state + admission + batcher + TCP front end."""

    def __init__(
        self,
        state: ServeState,
        *,
        admission: AdmissionController | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.0,
    ) -> None:
        self.state = state
        self.admission = admission if admission is not None else AdmissionController()
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port replaces it on start()
        self.batch_window = batch_window
        self._pending: deque[tuple[Task, asyncio.Future]] = deque()
        self._wakeup = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._closing = False
        self._server: asyncio.AbstractServer | None = None
        self._batcher: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._clock_floor = state.now  # admission clock, kept monotone
        self._batches = 0
        self._batched = 0
        self._largest_batch = 0

    # -- lifecycle ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the batcher; returns once listening."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._connection_entry, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.create_task(self._batch_loop())

    async def serve_until_shutdown(self) -> None:
        """Block until ``POST /shutdown`` (or :meth:`request_shutdown`), then stop."""
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Initiate a graceful stop (idempotent)."""
        self._closing = True
        self._shutdown.set()

    async def stop(self) -> None:
        """Flush pending work, stop the batcher, close the socket."""
        self._closing = True
        self._shutdown.set()
        if self._pending:
            self._flush()  # answer every admitted-but-unplaced submission
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            # Clients that saw the shutdown response close their end and
            # their handlers exit; anything still open after the grace
            # period is cancelled so the loop shuts down without strays.
            _done, lingering = await asyncio.wait(set(self._connections), timeout=1.0)
            for connection in lingering:
                connection.cancel()
            if lingering:
                await asyncio.gather(*lingering, return_exceptions=True)
            self._connections.clear()

    async def run(self) -> None:
        """Start, serve until shutdown, stop — the CLI entry point."""
        await self.start()
        await self.serve_until_shutdown()

    @property
    def address(self) -> str:
        """``host:port`` the daemon is listening on."""
        return f"{self.host}:{self.port}"

    # -- micro-batching -------------------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if self.batch_window > 0:
                # Accumulation window: let concurrent submissions pile up
                # so one scoring pass answers them all.
                await asyncio.sleep(self.batch_window)
            else:
                # Yield once so already-parsed concurrent requests join.
                await asyncio.sleep(0)
            self._flush()

    def _flush(self) -> None:
        """Score everything pending in one batch and resolve the futures."""
        if not self._pending:
            return
        batch: list[tuple[Task, asyncio.Future]] = []
        while self._pending:
            batch.append(self._pending.popleft())
        decisions = self.state.place_batch([task for task, _future in batch])
        self._batches += 1
        self._batched += len(batch)
        self._largest_batch = max(self._largest_batch, len(batch))
        for (_task, future), decision in zip(batch, decisions):
            if not future.done():
                future.set_result(decision)

    # -- request handling -------------------------------------------------------------
    async def _connection_entry(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._connections.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read ahead, answer strictly in request order.

        The reader loop dispatches each parsed request as its own task
        *without* awaiting it, so pipelined requests on one connection
        reach the pending queue together and form one micro-batch; a
        writer task awaits the handlers in order so responses never
        overtake each other on the wire.
        """
        responses: asyncio.Queue[asyncio.Task | None] = asyncio.Queue()

        async def _write_in_order() -> None:
            while True:
                handler = await responses.get()
                if handler is None:
                    return
                writer.write(await handler)
                await writer.drain()

        writer_task = asyncio.create_task(_write_in_order())
        try:
            while True:
                try:
                    request = await read_request(reader)
                except (ProtocolError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                responses.put_nowait(asyncio.create_task(self._dispatch(request)))
        finally:
            responses.put_nowait(None)
            try:
                await writer_task
            except ConnectionError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        route = (request.method, request.path)
        if route == ("POST", "/submit"):
            return await self._handle_submit(request)
        if route == ("GET", "/stats"):
            return render_response(200, self.stats())
        if route == ("GET", "/healthz"):
            return render_response(200, {"status": "ok"})
        if route == ("POST", "/shutdown"):
            self.request_shutdown()
            return render_response(200, {"status": "ok", "stopping": True})
        known = {"/submit", "/stats", "/healthz", "/shutdown"}
        if request.path in known:
            return render_response(405, {"error": f"wrong method for {request.path}"})
        return render_response(404, {"error": f"no route {request.path}"})

    async def _handle_submit(self, request: HttpRequest) -> bytes:
        try:
            submit = SubmitRequest.from_json(request.json())
        except ProtocolError as error:
            return render_response(400, {"error": str(error)})
        # The admission clock: the submission's virtual timestamp, never
        # behind the scheduler clock or a previously admitted request.
        now = submit.time if submit.time is not None else self.state.now
        self._clock_floor = max(self._clock_floor, now, self.state.now)
        now = self._clock_floor
        if self._closing:
            return render_response(
                503, {"status": SHED, "time": now, "reason": "service shutting down"}
            )
        decision = self.admission.admit(
            submit.tenant, now=now, queue_depth=len(self._pending)
        )
        if not decision.admitted:
            payload = {
                "status": decision.status,
                "time": now,
                "reason": decision.reason,
            }
            if decision.retry_after:
                payload["retry_after"] = decision.retry_after
            return render_response(STATUS_CODES[decision.status], payload)
        task = submit.to_task(arrival_time=now)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((task, future))
        self._wakeup.set()
        placement: PlacementDecision = await future
        payload = {
            "status": "accepted",
            "time": placement.time,
            "task_id": placement.task_id,
            "node": placement.node,
        }
        if placement.node is None:
            payload["reason"] = "no server can solve the request"
        return render_response(200, payload)

    # -- introspection ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``/stats`` payload: admission, batching and state counters."""
        return {
            "admission": self.admission.totals(),
            "tenants": self.admission.snapshot(),
            "batches": {
                "count": self._batches,
                "tasks": self._batched,
                "largest": self._largest_batch,
                "pending": len(self._pending),
            },
            "state": self.state.snapshot(),
        }
