"""Admission control for the live placement service.

The daemon sits between untrusted tenants and a finite platform, so every
submission passes two gates *before* it reaches the scheduler:

* a **per-tenant token bucket** — each tenant spends one token per
  request; tokens refill continuously at ``quota_rate`` per (virtual)
  second up to a burst capacity of ``quota_burst``.  An empty bucket is
  the 429-style :data:`REJECTED` outcome, with a ``retry_after`` hint
  telling the tenant when one token will be available again;
* a **bounded service queue** — requests admitted by their bucket but
  arriving faster than the scheduler drains its micro-batches are
  :data:`SHED` (503-style) once the backlog reaches ``queue_limit``,
  protecting the daemon's latency instead of queueing unboundedly.

Both gates are deterministic functions of the service's *virtual* clock,
so an accelerated trace replay exercises exactly the admission decisions
a real-time run would make.  The design follows the multi-tenant
admission-controller / credit-service split described in PAPERS.md: the
bucket is the per-tenant credit ledger, the bounded queue is the global
overload valve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.validation import ensure_non_negative, ensure_positive

#: Admission outcomes (mirrored by the HTTP status codes in
#: :mod:`repro.serve.protocol`).
ADMITTED = "admitted"
REJECTED = "rejected"  # per-tenant quota exhausted -> HTTP 429
SHED = "shed"  # service queue full -> HTTP 503


@dataclass(frozen=True)
class AdmissionDecision:
    """One gate decision for one submission."""

    status: str
    tenant: str
    #: Seconds (virtual) until a retry could be admitted; 0 when admitted
    #: or when shedding (the queue drains on its own schedule).
    retry_after: float = 0.0
    reason: str = ""

    @property
    def admitted(self) -> bool:
        """Whether the request may enter the scheduling queue."""
        return self.status == ADMITTED


class TokenBucket:
    """A continuously refilling token bucket on an external clock.

    >>> bucket = TokenBucket(rate=1.0, burst=2.0)
    >>> bucket.take(now=0.0), bucket.take(now=0.0), bucket.take(now=0.0)
    (True, True, False)
    >>> bucket.take(now=1.0)  # one token refilled after one second
    True
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated_at")

    def __init__(self, rate: float, burst: float) -> None:
        ensure_positive(rate, "rate")
        ensure_positive(burst, "burst")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated_at = 0.0

    def _refill(self, now: float) -> None:
        if now > self._updated_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated_at) * self.rate
            )
            self._updated_at = now

    def take(self, *, now: float) -> bool:
        """Spend one token at time ``now``; ``False`` when none is left.

        ``now`` may not go backwards between calls (the service clock is
        monotone); a stale ``now`` simply refills nothing.
        """
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def tokens_at(self, now: float) -> float:
        """Tokens available at time ``now`` (without spending any)."""
        return min(self.burst, self._tokens + max(now - self._updated_at, 0.0) * self.rate)

    def seconds_until_token(self, now: float) -> float:
        """Virtual seconds from ``now`` until one full token is available."""
        available = self.tokens_at(now)
        if available >= 1.0:
            return 0.0
        return (1.0 - available) / self.rate


@dataclass
class TenantStats:
    """Per-tenant admission counters."""

    admitted: int = 0
    rejected: int = 0
    shed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"admitted": self.admitted, "rejected": self.rejected, "shed": self.shed}


@dataclass
class AdmissionController:
    """Both gates plus their bookkeeping.

    Parameters
    ----------
    quota_rate:
        Tokens refilled per virtual second, per tenant.  ``math.inf``
        disables the quota gate (every tenant always has a token) — the
        configuration trace-replay determinism tests run under.
    quota_burst:
        Bucket capacity per tenant (initial allowance).
    queue_limit:
        Maximum backlog the service accepts before shedding; ``0``
        disables the queue gate.
    """

    quota_rate: float = math.inf
    quota_burst: float = 64.0
    queue_limit: int = 0
    _buckets: dict[str, TokenBucket] = field(default_factory=dict, repr=False)
    _tenants: dict[str, TenantStats] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not (math.isinf(self.quota_rate) and self.quota_rate > 0):
            ensure_positive(self.quota_rate, "quota_rate")
        ensure_positive(self.quota_burst, "quota_burst")
        ensure_non_negative(self.queue_limit, "queue_limit")

    @property
    def unlimited(self) -> bool:
        """Whether the quota gate is disabled."""
        return math.isinf(self.quota_rate)

    def _stats(self, tenant: str) -> TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = TenantStats()
        return stats

    def admit(self, tenant: str, *, now: float, queue_depth: int) -> AdmissionDecision:
        """Run both gates for one submission from ``tenant`` at time ``now``.

        ``queue_depth`` is the service's current admitted-but-unplaced
        backlog.  The queue gate runs first: a shed request does not spend
        a quota token (the tenant did nothing wrong — the service is
        overloaded).
        """
        stats = self._stats(tenant)
        if self.queue_limit and queue_depth >= self.queue_limit:
            stats.shed += 1
            return AdmissionDecision(
                status=SHED,
                tenant=tenant,
                reason=f"service queue full ({queue_depth}/{self.queue_limit})",
            )
        if not self.unlimited:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    rate=self.quota_rate, burst=self.quota_burst
                )
            if not bucket.take(now=now):
                stats.rejected += 1
                return AdmissionDecision(
                    status=REJECTED,
                    tenant=tenant,
                    retry_after=bucket.seconds_until_token(now),
                    reason="tenant quota exhausted",
                )
        stats.admitted += 1
        return AdmissionDecision(status=ADMITTED, tenant=tenant)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Per-tenant counters, keyed by tenant name (sorted)."""
        return {name: self._tenants[name].as_dict() for name in sorted(self._tenants)}

    def totals(self) -> dict[str, int]:
        """Aggregate admitted/rejected/shed counters across tenants."""
        totals = {"admitted": 0, "rejected": 0, "shed": 0}
        for stats in self._tenants.values():
            totals["admitted"] += stats.admitted
            totals["rejected"] += stats.rejected
            totals["shed"] += stats.shed
        return totals
