"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    repro table2                 # Table II comparison
    repro fig2                   # task distribution under POWER
    repro fig3                   # task distribution under PERFORMANCE
    repro fig4                   # task distribution under RANDOM
    repro fig5                   # energy per cluster
    repro fig6                   # heterogeneity study, 2 server types
    repro fig7                   # heterogeneity study, 4 server types
    repro fig9                   # adaptive provisioning scenario
    repro table1                 # the experimental infrastructure
    repro table3                 # the simulated cluster specs
    repro sweep                  # parallel scenario sweep with cached store
    repro store verify ...       # check a result store for corruption
    repro store migrate ...      # shard a legacy single-file store
    repro lab run ...            # one ad-hoc component composition
    repro trace convert ...      # real SWF log -> replayable CSV trace
    repro trace stats ...        # workload statistics of a trace
    repro trace inspect ...      # header directives + leading records
    repro timeline validate ...  # check an event-timeline file
    repro timeline inspect ...   # list a timeline's events
    repro serve ...              # long-lived placement daemon (repro.serve)
    repro replay ...             # fire a trace at a running daemon
    repro --version              # the installed package version

(``python -m repro …`` works identically without installing.)

Every experiment command accepts ``--quick`` to run a reduced
configuration (useful for smoke tests) — the default is the paper-scale
configuration used by the benchmark harness — and ``--seed`` to move the
base random seed of any stochastic component.

``repro sweep`` runs a named scenario grid through the sweep runner:
``--jobs`` fans scenarios out over worker processes, ``--store`` caches
results — in a single JSONL file (``results.jsonl``) or, for any other
path, a crash-safe sharded store *directory* (per-hash-prefix shard
files; see ``docs/ARCHITECTURE.md``) — so a second run over the same
grid is served entirely from cache; ``--force`` bypasses the cache,
``--filter`` restricts the grid to scenarios whose id contains a
substring, and ``--profile`` appends a per-scenario wall-time /
events-per-second table.  ``--workers-dir DIR`` turns the invocation
into one *worker* of a multi-process / multi-host sweep: workers claim
work shards via lock files in DIR, execute them against the shared
``--store`` directory, sweep up anything a crashed worker left behind,
and each exits with the identical grid-order summary.

``repro store`` maintains result stores: ``verify`` parses every record
(exit 2 on corruption, reporting quarantined torn tails), ``migrate``
shards a legacy single-file store in place.
``repro sweep --trace FILE`` replaces the named grid with a
platforms × policies grid replaying a trace (the trace content hash
keys the store, so edits invalidate exactly the affected entries).
``repro sweep --timeline FILE`` replaces it with a platforms × horizons
adaptive grid driven by a declarative event timeline — tariff
schedules, thermal excursions, node crashes and workload bursts
(``docs/SCENARIOS.md``); the *parsed* timeline's content hash keys the
store.  Giving both (equivalently ``--grid cross``) composes them into
the trace × timeline × provisioning cross grid — a recorded request
stream, replayed under fault injection, both with fixed policies and
through the adaptive provisioning planner.

``repro lab run`` executes one ad-hoc composition through
:mod:`repro.lab` — any workload (synthetic preset, ``--trace``) × any
policy × any event timeline on any experiment family — and prints the
uniform metric summary.  ``--set KEY=VALUE`` overrides individual
experiment parameters.

``repro timeline`` works with timeline files: ``validate`` parses and
validates one (exit 2 on errors), ``inspect`` lists its events.

``repro serve`` opens a lab composition as the long-lived placement
daemon of :mod:`repro.serve` (``docs/SERVING.md``): HTTP/JSON task
submission with per-tenant token-bucket quotas, a bounded backlog and
micro-batched scoring.  ``repro replay`` is the matching client: it
fires a trace file at a running daemon in real or accelerated time and
prints the admission/placement totals.

``repro trace`` is the real-log pipeline (``docs/TRACE_FORMAT.md``):
``convert`` parses a Standard Workload Format log, maps jobs onto tasks
and writes a CSV trace (with ``--window``, ``--sample-users``,
``--scale-arrivals``, ``--scale-load`` and ``--truncate`` transforms);
``stats`` summarises a trace; ``inspect`` shows raw header directives
and leading records.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.experiments.adaptive import adaptive_config_for, run_adaptive_experiment
from repro.experiments.greenperf_eval import run_heterogeneity_experiment
from repro.experiments.placement import run_placement_experiment, run_policy_comparison
from repro.experiments.presets import (
    PlacementExperimentConfig,
    paper_infrastructure_table,
    placement_config_for,
    simulated_clusters_table,
)
from repro.experiments.reporting import (
    format_adaptive_series,
    format_energy_per_cluster,
    format_metric_points,
    format_table2,
    format_task_distribution,
)
from repro._version import __version__
from repro.runner.executor import run_scenarios
from repro.runner.grids import cross_grid, grid, named_grids, timeline_grid, trace_grid
from repro.runner.spec import ScenarioSpec
from repro.scenario import load_timeline
from repro.runner.reporting import (
    SweepProgressPrinter,
    format_sweep_profile,
    format_sweep_summary,
)
from repro.util.tables import render_table
from repro.workload.ingest import (
    SampleUsers,
    ScaleArrivals,
    ScaleLoad,
    SWFTraceMap,
    TimeWindow,
    Truncate,
    load_swf_trace,
    parse_swf,
    read_swf_header,
)
from repro.workload.ingest.swf import SWF_FIELDS
from repro.workload.traces import load_trace, save_trace

def _placement_config(args: argparse.Namespace) -> PlacementExperimentConfig:
    scale = "quick" if args.quick else "paper"
    return placement_config_for(scale, scale, seed=args.seed)


def _cmd_table1(args: argparse.Namespace) -> str:
    rows = paper_infrastructure_table()
    lines = ["Table I — experimental infrastructure"]
    lines.append(f"{'Cluster':<12}{'Nodes':>6}  {'CPU':<22}{'Memory':>8}  Role")
    for row in rows:
        lines.append(
            f"{row['cluster']:<12}{row['nodes']:>6}  {row['cpu']:<22}"
            f"{row['memory_gb']:>6.0f}GB  {row['role']}"
        )
    return "\n".join(lines)


def _cmd_table2(args: argparse.Namespace) -> str:
    comparison = run_policy_comparison(config=_placement_config(args))
    lines = ["Table II — makespan and energy per policy", format_table2(comparison)]
    lines.append(
        f"POWER saves {comparison.energy_saving('POWER', 'RANDOM'):.1%} vs RANDOM "
        f"and {comparison.energy_saving('POWER', 'PERFORMANCE'):.1%} vs PERFORMANCE "
        f"(paper: 25% / 19%)"
    )
    return "\n".join(lines)


def _cmd_table3(args: argparse.Namespace) -> str:
    rows = simulated_clusters_table()
    lines = ["Table III — energy consumption of simulated clusters"]
    lines.append(f"{'Cluster':<10}{'Idle (W)':>10}{'Peak (W)':>10}")
    for row in rows:
        lines.append(
            f"{row['cluster']:<10}{row['idle_consumption']:>10.0f}"
            f"{row['peak_consumption']:>10.0f}"
        )
    return "\n".join(lines)


def _distribution_command(policy: str, figure: str) -> Callable[[argparse.Namespace], str]:
    def _command(args: argparse.Namespace) -> str:
        result = run_placement_experiment(policy, _placement_config(args))
        return format_task_distribution(
            result.metrics.tasks_per_node,
            title=f"{figure}: tasks per node ({policy})",
        )

    return _command


def _cmd_fig5(args: argparse.Namespace) -> str:
    comparison = run_policy_comparison(config=_placement_config(args))
    return "Figure 5 — energy per cluster (J)\n" + format_energy_per_cluster(comparison)


def _heterogeneity_command(kinds: int) -> Callable[[argparse.Namespace], str]:
    def _command(args: argparse.Namespace) -> str:
        tasks = 20 if args.quick else 50
        result = run_heterogeneity_experiment(
            kinds=kinds,
            tasks_per_client=tasks,
            random_seeds=tuple(args.seed + offset for offset in range(5)),
        )
        return format_metric_points(result)

    return _command


def _cmd_fig9(args: argparse.Namespace) -> str:
    config = adaptive_config_for(workload="quick" if args.quick else "paper")
    result = run_adaptive_experiment(config)
    return format_adaptive_series(result)


def _cmd_sweep(args: argparse.Namespace) -> str:
    if args.list:
        lines = ["Available grids:"]
        for name in named_grids():
            lines.append(f"  {name:<16}{len(grid(name))} scenarios")
        lines.append("  --trace FILE    platforms x policies replay of a trace")
        lines.append("  --timeline FILE platforms x horizons adaptive run of a timeline")
        lines.append(
            "  --trace FILE --timeline FILE (or --grid cross): the trace x "
            "timeline x provisioning cross grid"
        )
        return "\n".join(lines)
    if args.grid is not None and args.grid != "cross" and (
        args.trace is not None or args.timeline is not None
    ):
        raise ValueError(
            "--grid is mutually exclusive with --trace/--timeline "
            "(except --grid cross, which composes both)"
        )
    if args.grid == "cross" or (args.trace is not None and args.timeline is not None):
        if args.trace is None or args.timeline is None:
            raise ValueError(
                "the cross grid composes a trace with a timeline; "
                "give both --trace FILE and --timeline FILE"
            )
        scenarios = cross_grid(args.trace, args.timeline)
        grid_name = f"cross:{Path(args.trace).name}+{Path(args.timeline).name}"
    elif args.trace is not None:
        scenarios = trace_grid(args.trace)
        grid_name = f"trace:{Path(args.trace).name}"
    elif args.timeline is not None:
        scenarios = timeline_grid(args.timeline)
        grid_name = f"timeline:{Path(args.timeline).name}"
    else:
        grid_name = args.grid if args.grid is not None else "default"
        scenarios = grid(grid_name)
    if args.filter:
        scenarios = tuple(s for s in scenarios if args.filter in s.scenario_id)
    if not scenarios:
        return f"grid {grid_name!r}: no scenario matches filter {args.filter!r}"
    printer = SweepProgressPrinter()
    if args.workers_dir is not None:
        if args.store is None:
            raise ValueError(
                "--workers-dir needs --store DIR: the shared store every "
                "worker appends to"
            )
        if args.force:
            raise ValueError(
                "--force is incompatible with --workers-dir (the shared "
                "store is the source of truth; delete it to re-run)"
            )
        if args.profile:
            raise ValueError("--profile is not supported with --workers-dir")
        from repro.runner.workers import run_worker

        outcome, worker_report = run_worker(
            scenarios,
            store=args.store,
            workers_dir=args.workers_dir,
            jobs=args.jobs,
            worker_id=args.worker_id,
            progress=printer,
        )
        return (
            worker_report.summary
            + "\n"
            + format_sweep_summary(outcome, title=f"Sweep {grid_name!r}")
        )
    outcome = run_scenarios(
        scenarios,
        jobs=args.jobs,
        store=args.store,
        force=args.force,
        progress=printer,
        profile=args.profile,
    )
    report = format_sweep_summary(outcome, title=f"Sweep {grid_name!r}")
    if args.profile:
        report += "\n" + format_sweep_profile(outcome)
    return report


# -- repro store ------------------------------------------------------------------------


def _cmd_store_verify(args: argparse.Namespace) -> str:
    import warnings

    from repro.runner.store import ShardedResultStore, open_store

    path = Path(args.path)
    if not path.exists():
        raise ValueError(f"{path}: no store file or directory")
    store = open_store(path)
    with warnings.catch_warnings(record=True) as repaired:
        warnings.simplefilter("always")
        store.load()
        count = len(store)  # forces a full parse of every shard
    lines = [f"{path}: store ok — {count} record(s)"]
    if isinstance(store, ShardedResultStore):
        lines.append(
            f"layout: sharded, {len(store.shard_files())} shard file(s) of "
            f"{store.shard_count} addressable (prefix_len {store.prefix_len})"
        )
    else:
        lines.append("layout: single-file JSONL")
    lines.append(f"quarantined: {store.quarantined()}")
    if repaired:
        lines.append(f"torn tails repaired on this open: {len(repaired)}")
    return "\n".join(lines)


def _cmd_store_migrate(args: argparse.Namespace) -> str:
    from repro.runner.store import ShardedResultStore

    path = Path(args.path)
    if path.is_dir():
        return f"{path}: already a sharded store directory"
    if not path.is_file():
        raise ValueError(f"{path}: no single-file store to migrate")
    store = ShardedResultStore(path, prefix_len=args.prefix_len).load()
    return (
        f"migrated {path} -> sharded store directory "
        f"({len(store)} record(s), {store.shard_count} addressable shards; "
        f"original kept as {path.name}.pre-shard.bak)"
    )


# -- repro lab --------------------------------------------------------------------------


def _parse_override(text: str) -> tuple[str, object]:
    """Parse one ``--set KEY=VALUE`` into a typed override pair."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise ValueError(f"--set expects KEY=VALUE, got {text!r}")
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            pass
    if raw.lower() in ("true", "false"):
        return key, raw.lower() == "true"
    return key, raw


def _cmd_lab_run(args: argparse.Namespace) -> str:
    from repro.lab.compat import session_for_spec

    policy = args.policy
    if policy is None:
        if args.family == "adaptive":
            policy = "GREENPERF"
        elif args.family == "queue":
            policy = "FCFS"
        else:
            policy = "POWER"
    spec = ScenarioSpec(
        experiment=args.family,
        platform=args.platform,
        workload="trace" if args.trace is not None else args.workload,
        policy=policy,
        preference=args.preference,
        seed=args.seed,
        horizon=args.horizon,
        trace=args.trace,
        timeline=args.timeline,
        overrides=dict(_parse_override(item) for item in args.set or ()),
    )
    session = session_for_spec(spec)
    result = session.run()
    rows = [
        (name, f"{value:.6g}") for name, value in sorted(result.metrics.items())
    ]
    lines = [
        f"Lab run — {spec.scenario_id} ({result.backend} backend)",
        render_table(("metric", "value"), rows),
    ]
    if result.candidate_series:
        final = result.candidate_series[-1]
        lines.append(
            f"provisioning: {len(result.candidate_series)} checks, "
            f"final candidate pool {final[1]} at t={final[0]:g}s"
        )
    if result.timeline is not None:
        lines.append(f"timeline: {len(result.timeline)} event(s) injected")
    return "\n".join(lines)


# -- repro serve / repro replay ---------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    import math

    from repro.experiments.presets import PLATFORM_PRESETS
    from repro.lab import (
        LabSession,
        PlatformSource,
        PolicySource,
        ServeSource,
        WorkloadSource,
    )

    if args.platform not in PLATFORM_PRESETS:
        raise ValueError(
            f"unknown platform preset {args.platform!r}; "
            f"one of {', '.join(PLATFORM_PRESETS)}"
        )
    session = LabSession(
        platform=PlatformSource.table1(PLATFORM_PRESETS[args.platform]),
        workload=WorkloadSource.served(),
        policy=PolicySource(
            args.policy,
            seed=args.seed if args.policy.strip().upper() == "RANDOM" else None,
        ),
        timeline=args.timeline,
    )
    service = session.open_service(
        ServeSource(
            quota_rate=args.quota_rate if args.quota_rate is not None else math.inf,
            quota_burst=args.quota_burst,
            queue_limit=args.queue_limit,
            host=args.host,
            port=args.port,
            batch_window=args.batch_window,
        )
    )

    async def _run() -> None:
        await service.start()
        # Announced before blocking: with --port 0 the bound port is
        # ephemeral and clients need it to connect.
        print(f"repro serve: listening on {service.address} "
              f"(policy {service.state.policy}); POST /shutdown stops it",
              flush=True)
        await service.serve_until_shutdown()

    asyncio.run(_run())
    stats = service.stats()
    admission, batches, state = stats["admission"], stats["batches"], stats["state"]
    rows = [
        ("admitted", f"{admission['admitted']}"),
        ("rejected (quota)", f"{admission['rejected']}"),
        ("shed (backlog)", f"{admission['shed']}"),
        ("placements", f"{state['decisions']}"),
        ("completed", f"{state['completed']}"),
        ("micro-batches", f"{batches['count']}"),
        ("largest batch", f"{batches['largest']}"),
        ("virtual time (s)", f"{state['time']:g}"),
    ]
    return "repro serve: shut down cleanly\n" + render_table(("counter", "value"), rows)


def _cmd_replay(args: argparse.Namespace) -> str:
    import asyncio

    from repro.serve.replay import replay_trace

    try:
        report = asyncio.run(
            replay_trace(
                args.trace,
                host=args.host,
                port=args.port,
                speed=args.speed,
                window=args.window,
                limit=args.limit,
                repeat=args.repeat,
                tenant=args.tenant,
                shutdown=args.shutdown,
            )
        )
    except ConnectionRefusedError:
        raise ValueError(
            f"no daemon listening on {args.host}:{args.port} "
            f"(start one with 'repro serve')"
        ) from None
    rows = [(name, f"{value:g}" if isinstance(value, float) else f"{value}")
            for name, value in report.as_dict().items()]
    return (
        f"Replay — {args.trace} -> {args.host}:{args.port}\n"
        + render_table(("metric", "value"), rows)
    )


# -- repro trace ------------------------------------------------------------------------


def _trace_format(path: str, explicit: str) -> str:
    """Resolve ``--format auto`` from the file extension."""
    if explicit != "auto":
        return explicit
    return "swf" if Path(path).suffix.lower() == ".swf" else "csv"


def _trace_mapping(args: argparse.Namespace) -> SWFTraceMap:
    return SWFTraceMap(
        flops_per_core=args.flops_per_core,
        client_by=args.client_by,
        service_by=args.service_by,
    )


def _trace_transforms(args: argparse.Namespace) -> list:
    """The transform pipeline, in fixed window→sample→scale→truncate order."""
    transforms: list = []
    if args.window is not None:
        start, end = args.window
        transforms.append(TimeWindow(start=start, end=end))
    if args.sample_users is not None:
        transforms.append(SampleUsers(args.sample_users, seed=args.sample_seed))
    if args.scale_arrivals is not None:
        transforms.append(ScaleArrivals(args.scale_arrivals))
    if args.scale_load is not None:
        transforms.append(ScaleLoad(args.scale_load))
    if args.truncate is not None:
        transforms.append(Truncate(args.truncate))
    return transforms


def _load_tasks(path: str, fmt: str, mapping: SWFTraceMap | None = None):
    """A trace file as a task tuple (plus skipped-job count for SWF)."""
    try:
        if fmt == "swf":
            skipped: list = []
            tasks = load_swf_trace(path, mapping, skipped=skipped)
            return tasks, len(skipped)
        return load_trace(path), 0
    except OSError as error:
        raise ValueError(f"cannot read trace file: {error}") from None


def _cmd_trace_convert(args: argparse.Namespace) -> str:
    skipped: list = []
    try:
        tasks = load_swf_trace(
            args.input,
            _trace_mapping(args),
            transforms=_trace_transforms(args),
            skipped=skipped,
        )
    except OSError as error:
        raise ValueError(f"cannot read {args.input!r}: {error}") from None
    if not tasks:
        raise ValueError(
            f"{args.input}: no replayable job survived mapping and transforms "
            f"({len(skipped)} job(s) without runtime/processors were skipped)"
        )
    try:
        save_trace(args.output, tasks)
    except OSError as error:
        raise ValueError(f"cannot write {args.output!r}: {error}") from None
    span = tasks[-1].arrival_time - tasks[0].arrival_time
    return (
        f"converted {args.input} -> {args.output}: {len(tasks)} task(s), "
        f"{len(skipped)} unplayable job(s) skipped, "
        f"time span {span:.0f} s"
    )


def _cmd_trace_stats(args: argparse.Namespace) -> str:
    fmt = _trace_format(args.file, args.format)
    tasks, skipped = _load_tasks(args.file, fmt, _trace_mapping(args))
    if not tasks:
        return f"{args.file}: empty trace (0 tasks)"
    arrivals = [task.arrival_time for task in tasks]
    flops = [task.flop for task in tasks]
    span = arrivals[-1] - arrivals[0]
    rate = (len(tasks) - 1) / span if span > 0 else float("inf")
    rows = [
        ("tasks", f"{len(tasks)}"),
        ("clients", f"{len({task.client for task in tasks})}"),
        ("services", f"{len({task.service for task in tasks})}"),
        ("time span (s)", f"{span:.1f}"),
        ("mean arrival rate (req/s)", f"{rate:.3f}" if span > 0 else "inf"),
        ("total flop", f"{sum(flops):.3e}"),
        ("mean flop/task", f"{sum(flops) / len(flops):.3e}"),
        ("min/max flop", f"{min(flops):.3e} / {max(flops):.3e}"),
        (
            "preference range",
            f"[{min(task.user_preference for task in tasks):+.2f}, "
            f"{max(task.user_preference for task in tasks):+.2f}]",
        ),
    ]
    if fmt == "swf":
        rows.append(("unplayable jobs skipped", f"{skipped}"))
    title = f"Trace statistics — {args.file} ({fmt})"
    return title + "\n" + render_table(("metric", "value"), rows)


def _cmd_trace_inspect(args: argparse.Namespace) -> str:
    fmt = _trace_format(args.file, args.format)
    lines = [f"Trace — {args.file} ({fmt})"]
    if fmt == "swf":
        try:
            header = read_swf_header(args.file)
            jobs = []
            for job in parse_swf(args.file):
                if len(jobs) >= max(0, args.jobs):
                    break
                jobs.append(job)
        except OSError as error:
            raise ValueError(f"cannot read trace file: {error}") from None
        if header:
            lines.append("Header directives:")
            lines.extend(f"  {key}: {value}" for key, value in header.items())
        else:
            lines.append("Header directives: (none)")
        lines.append(f"First {len(jobs)} job record(s):")
        columns = ("job_id", "submit_time", "run_time", "allocated_processors",
                   "user_id", "queue", "status")

        def _cell(value) -> str:
            # ints print exactly; floats keep full useful precision so large
            # submit times / job ids never collapse into scientific notation.
            if value is None:
                return "-"
            return str(value) if isinstance(value, int) else format(value, ".10g")

        rows = [
            tuple(_cell(getattr(job, column)) for column in columns) for job in jobs
        ]
        lines.append(render_table(columns, rows))
        lines.append(f"(full records carry {len(SWF_FIELDS)} fields)")
    else:
        tasks, _ = _load_tasks(args.file, fmt)
        shown = tasks[: args.jobs]
        lines.append(f"First {len(shown)} of {len(tasks)} task(s):")
        rows = [
            (
                f"{task.arrival_time:g}",
                f"{task.flop:.3e}",
                task.client,
                f"{task.user_preference:+.2f}",
                task.service,
            )
            for task in shown
        ]
        lines.append(
            render_table(
                ("arrival_time", "flop", "client", "preference", "service"), rows
            )
        )
    return "\n".join(lines)


# -- repro timeline ---------------------------------------------------------------------


def _cmd_timeline_validate(args: argparse.Namespace) -> str:
    timeline = load_timeline(args.file)
    kinds: dict[str, int] = {}
    for event in timeline:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    rows = [("events", f"{len(timeline)}")]
    rows.extend((kind, f"{count}") for kind, count in sorted(kinds.items()))
    rows.append(("span (s)", f"{timeline.end_time:.1f}"))
    rows.append(("content hash", timeline.content_hash()[:16]))
    return (
        f"{args.file}: valid timeline\n"
        + render_table(("property", "value"), rows)
    )


def _cmd_timeline_inspect(args: argparse.Namespace) -> str:
    timeline = load_timeline(args.file)
    rows = [
        (
            f"{event.time:g}",
            event.kind,
            "scheduled" if event.scheduled else "unexpected",
            event.describe(),
        )
        for event in timeline
    ]
    return (
        f"Timeline — {args.file} ({len(timeline)} event(s), "
        f"hash {timeline.content_hash()[:16]})\n"
        + render_table(("time", "kind", "visibility", "description"), rows)
    )


_COMMANDS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "table1": ("print the Table I infrastructure", _cmd_table1),
    "table2": ("reproduce Table II (makespan & energy per policy)", _cmd_table2),
    "table3": ("print the Table III simulated cluster specs", _cmd_table3),
    "fig2": ("reproduce Figure 2 (POWER task distribution)", _distribution_command("POWER", "Figure 2")),
    "fig3": ("reproduce Figure 3 (PERFORMANCE task distribution)", _distribution_command("PERFORMANCE", "Figure 3")),
    "fig4": ("reproduce Figure 4 (RANDOM task distribution)", _distribution_command("RANDOM", "Figure 4")),
    "fig5": ("reproduce Figure 5 (energy per cluster)", _cmd_fig5),
    "fig6": ("reproduce Figure 6 (2 server types)", _heterogeneity_command(2)),
    "fig7": ("reproduce Figure 7 (4 server types)", _heterogeneity_command(4)),
    "fig9": ("reproduce Figure 9 (adaptive provisioning)", _cmd_fig9),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the green-scheduling paper.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (help_text, handler) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--quick",
            action="store_true",
            help="run a reduced configuration instead of the paper-scale one",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=0,
            help="base random seed for stochastic components (default: 0)",
        )
        sub.set_defaults(handler=handler)

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario grid in parallel with a cached result store"
    )
    sweep.add_argument(
        "--grid",
        default=None,
        help=f"named grid to run (default: 'default'; one of {', '.join(named_grids())})",
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay a CSV trace (from 'repro trace convert') as a "
        "platforms x policies grid instead of a named grid",
    )
    sweep.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="run a platforms x horizons adaptive grid driven by an event-"
        "timeline file (TOML/JSON) instead of a named grid",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan scenarios out over (default: 1)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result store; already-stored scenarios are not re-simulated "
        "(a .jsonl path keeps the single-file layout, any other path "
        "opens a crash-safe sharded store directory)",
    )
    sweep.add_argument(
        "--workers-dir",
        default=None,
        metavar="DIR",
        help="run as one worker of a multi-process/multi-host sweep: claim "
        "work shards via lock files in DIR and execute them against the "
        "shared --store directory (rerun anywhere resumes from cache)",
    )
    sweep.add_argument(
        "--worker-id",
        default=None,
        metavar="NAME",
        help="identity recorded in claim files (default: <hostname>-<pid>)",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="re-run every scenario even when the store already has its result",
    )
    sweep.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTRING",
        help="only run scenarios whose id contains SUBSTRING",
    )
    sweep.add_argument(
        "--list",
        action="store_true",
        help="list the available grids and their sizes, then exit",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="print per-scenario wall time and events/sec after the summary",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    store = subparsers.add_parser(
        "store", help="verify and maintain sweep result stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="parse every record of a store (exit 2 on corruption)",
        description="Load a result store — single-file JSONL or a sharded "
        "store directory — parsing every record.  Corrupt interior lines "
        "exit 2; torn tails left by crashed appends are quarantined and "
        "reported.",
    )
    store_verify.add_argument("path", help="store file or directory")
    store_verify.set_defaults(handler=_cmd_store_verify)
    store_migrate = store_sub.add_parser(
        "migrate",
        help="shard a legacy single-file store in place",
        description="Migrate a single-file JSONL store to the sharded "
        "directory layout (per-hash-prefix shard files).  The original "
        "file is kept beside the new directory as <name>.pre-shard.bak.",
    )
    store_migrate.add_argument("path", help="single-file store to migrate")
    store_migrate.add_argument(
        "--prefix-len",
        type=int,
        default=1,
        help="hex digits of the scenario hash naming a shard "
        "(default: 1 = 16 shards)",
    )
    store_migrate.set_defaults(handler=_cmd_store_migrate)

    lab = subparsers.add_parser(
        "lab", help="compose and run ad-hoc experiments through repro.lab"
    )
    lab_sub = lab.add_subparsers(dest="lab_command", required=True)
    lab_run = lab_sub.add_parser(
        "run",
        help="run one component composition and print its metric summary",
        description="Compose platform x workload x policy x provisioning x "
        "timeline through repro.lab and run it once.  Any trace and any "
        "timeline are legal on any family; --set overrides individual "
        "experiment parameters (e.g. --set check_period=300).",
    )
    lab_run.add_argument(
        "--family",
        choices=("placement", "heterogeneity", "adaptive", "queue"),
        default="placement",
        help="experiment family providing presets and post-processing "
        "(default: placement; adaptive adds the provisioning planner; "
        "queue batch-schedules with FCFS/EASY/CONSERVATIVE/DRF — cap "
        "capacity with --set queue_cores=N)",
    )
    lab_run.add_argument(
        "--platform",
        default="quick",
        help="platform preset: paper/half/quick/tiny, or types2..types4 "
        "for the heterogeneity family (default: quick)",
    )
    lab_run.add_argument(
        "--workload",
        default="quick",
        help="workload preset (default: quick); ignored when --trace is given",
    )
    lab_run.add_argument(
        "--policy",
        default=None,
        help="scheduling policy (default: POWER; GREENPERF for adaptive)",
    )
    lab_run.add_argument(
        "--preference",
        type=float,
        default=0.0,
        help="GREEN_SCORE user-preference weight in [-1, 1] (default: 0)",
    )
    lab_run.add_argument(
        "--seed", type=int, default=0, help="RANDOM-policy seed (default: 0)"
    )
    lab_run.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="observation-window cap in seconds (adaptive duration)",
    )
    lab_run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay this trace file (CSV or raw .swf) as the workload",
    )
    lab_run.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="inject this event-timeline file (TOML/JSON) into the run",
    )
    lab_run.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override one experiment parameter (repeatable)",
    )
    lab_run.set_defaults(handler=_cmd_lab_run)

    trace = subparsers.add_parser(
        "trace", help="ingest, inspect and summarise workload trace files"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _add_mapping_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--flops-per-core",
            type=float,
            default=1.0e9,
            help="node-speed anchor converting SWF core-seconds to FLOP "
            "(default: 1e9)",
        )
        sub.add_argument(
            "--client-by",
            choices=("user", "group"),
            default="user",
            help="SWF identity field naming the submitting client (default: user)",
        )
        sub.add_argument(
            "--service-by",
            choices=("queue", "partition"),
            default="queue",
            help="SWF field naming the requested service (default: queue)",
        )

    convert = trace_sub.add_parser(
        "convert",
        help="convert a Standard Workload Format log into a CSV trace",
        description="Parse an SWF log, map jobs onto simulation tasks and "
        "write a CSV trace.  Transforms apply in the fixed order "
        "window -> sample-users -> scale-arrivals -> scale-load -> truncate.",
    )
    convert.add_argument("input", help="SWF log file to parse")
    convert.add_argument("output", help="CSV trace file to write")
    _add_mapping_options(convert)
    convert.add_argument(
        "--window",
        nargs=2,
        type=float,
        default=None,
        metavar=("START", "END"),
        help="keep jobs arriving in [START, END) seconds, re-anchored to t=0",
    )
    convert.add_argument(
        "--sample-users",
        type=float,
        default=None,
        metavar="FRACTION",
        help="keep a deterministic fraction of clients (whole users at a time)",
    )
    convert.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        help="seed of the user-sampling hash (default: 0)",
    )
    convert.add_argument(
        "--scale-arrivals",
        type=float,
        default=None,
        metavar="FACTOR",
        help="multiply arrival times by FACTOR (<1 compresses, >1 stretches)",
    )
    convert.add_argument(
        "--scale-load",
        type=float,
        default=None,
        metavar="FACTOR",
        help="multiply each task's FLOP cost by FACTOR",
    )
    convert.add_argument(
        "--truncate",
        type=int,
        default=None,
        metavar="COUNT",
        help="keep only the first COUNT tasks",
    )
    convert.set_defaults(handler=_cmd_trace_convert)

    stats = trace_sub.add_parser(
        "stats", help="summarise the workload a trace file describes"
    )
    stats.add_argument("file", help="trace file (.swf or CSV)")
    stats.add_argument(
        "--format",
        choices=("auto", "swf", "csv"),
        default="auto",
        help="trace format (default: by file extension)",
    )
    _add_mapping_options(stats)
    stats.set_defaults(handler=_cmd_trace_stats)

    inspect = trace_sub.add_parser(
        "inspect", help="show header directives and leading trace records"
    )
    inspect.add_argument("file", help="trace file (.swf or CSV)")
    inspect.add_argument(
        "--format",
        choices=("auto", "swf", "csv"),
        default="auto",
        help="trace format (default: by file extension)",
    )
    inspect.add_argument(
        "--jobs",
        type=int,
        default=10,
        help="number of leading records to show (default: 10)",
    )
    inspect.set_defaults(handler=_cmd_trace_inspect)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived placement daemon (HTTP/JSON + admission)",
        description="Open a lab composition as a live placement service: "
        "task submissions arrive over HTTP/JSON, pass per-tenant "
        "token-bucket quotas and a bounded backlog, and are scored in "
        "micro-batches on a virtual clock (docs/SERVING.md).",
    )
    serve.add_argument(
        "--platform",
        default="quick",
        help="platform preset: paper/half/quick/tiny (default: quick)",
    )
    serve.add_argument(
        "--policy",
        default="GREENPERF",
        help="scheduling policy electing nodes (default: GREENPERF)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="RANDOM-policy seed (default: 0)"
    )
    serve.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="inject this event-timeline file (TOML/JSON) into the live state",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8423,
        help="TCP port (default: 8423; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        metavar="TOKENS_PER_S",
        help="per-tenant token refill rate per virtual second "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--quota-burst",
        type=float,
        default=64.0,
        help="per-tenant token-bucket capacity (default: 64)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=0,
        help="shed submissions once this many are admitted but unplaced "
        "(default: 0 = never shed)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="accumulation delay before each micro-batch is scored "
        "(default: 0 = score whatever has piled up)",
    )
    serve.set_defaults(handler=_cmd_serve)

    replay = subparsers.add_parser(
        "replay",
        help="fire a trace file at a running placement daemon",
        description="Replay a workload trace (CSV or raw .swf) against a "
        "daemon started with 'repro serve', preserving trace order over "
        "one pipelined connection, in real or accelerated time.",
    )
    replay.add_argument("trace", help="trace file to replay (.swf or CSV)")
    replay.add_argument(
        "--host", default="127.0.0.1", help="daemon address (default: 127.0.0.1)"
    )
    replay.add_argument(
        "--port", type=int, default=8423, help="daemon port (default: 8423)"
    )
    replay.add_argument(
        "--speed",
        type=float,
        default=None,
        metavar="FACTOR",
        help="virtual seconds per wall second (1.0 = real time; "
        "default: as fast as the socket allows)",
    )
    replay.add_argument(
        "--window",
        type=int,
        default=8,
        help="submissions in flight before awaiting a response (default: 8)",
    )
    replay.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="COUNT",
        help="replay only the first COUNT tasks",
    )
    replay.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="concatenate the trace with itself this many times (default: 1)",
    )
    replay.add_argument(
        "--tenant",
        default=None,
        help="submit everything under one tenant (default: the trace users)",
    )
    replay.add_argument(
        "--shutdown",
        action="store_true",
        help="send POST /shutdown after the last response",
    )
    replay.set_defaults(handler=_cmd_replay)

    timeline = subparsers.add_parser(
        "timeline", help="validate and inspect event-timeline files"
    )
    timeline_sub = timeline.add_subparsers(dest="timeline_command", required=True)
    tl_validate = timeline_sub.add_parser(
        "validate",
        help="parse and validate a timeline file (exit 2 on errors)",
        description="Load a TOML/JSON event timeline, run full validation "
        "(event fields, crash/repair protocol) and print a summary.",
    )
    tl_validate.add_argument("file", help="timeline file (.toml or .json)")
    tl_validate.set_defaults(handler=_cmd_timeline_validate)
    tl_inspect = timeline_sub.add_parser(
        "inspect", help="list the events of a timeline file"
    )
    tl_inspect.add_argument("file", help="timeline file (.toml or .json)")
    tl_inspect.set_defaults(handler=_cmd_timeline_inspect)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, run the selected command, print its report."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.handler(args)
    except ValueError as error:
        # Bad user input (unknown grid/preset, jobs < 1, corrupt store…):
        # report it like an argument error instead of a traceback.
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
