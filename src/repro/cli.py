"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    repro table2                 # Table II comparison
    repro fig2                   # task distribution under POWER
    repro fig3                   # task distribution under PERFORMANCE
    repro fig4                   # task distribution under RANDOM
    repro fig5                   # energy per cluster
    repro fig6                   # heterogeneity study, 2 server types
    repro fig7                   # heterogeneity study, 4 server types
    repro fig9                   # adaptive provisioning scenario
    repro table1                 # the experimental infrastructure
    repro table3                 # the simulated cluster specs
    repro sweep                  # parallel scenario sweep with cached store

(``python -m repro …`` works identically without installing.)

Every experiment command accepts ``--quick`` to run a reduced
configuration (useful for smoke tests) — the default is the paper-scale
configuration used by the benchmark harness — and ``--seed`` to move the
base random seed of any stochastic component.

``repro sweep`` runs a named scenario grid through the sweep runner:
``--jobs`` fans scenarios out over worker processes, ``--store`` caches
results in a JSONL file (a second run over the same grid is served
entirely from cache), ``--force`` bypasses the cache, and ``--filter``
restricts the grid to scenarios whose id contains a substring.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments.adaptive import adaptive_config_for, run_adaptive_experiment
from repro.experiments.greenperf_eval import run_heterogeneity_experiment
from repro.experiments.placement import run_placement_experiment, run_policy_comparison
from repro.experiments.presets import (
    PlacementExperimentConfig,
    paper_infrastructure_table,
    placement_config_for,
    simulated_clusters_table,
)
from repro.experiments.reporting import (
    format_adaptive_series,
    format_energy_per_cluster,
    format_metric_points,
    format_table2,
    format_task_distribution,
)
from repro.runner.executor import run_scenarios
from repro.runner.grids import grid, named_grids
from repro.runner.reporting import SweepProgressPrinter, format_sweep_summary

def _placement_config(args: argparse.Namespace) -> PlacementExperimentConfig:
    scale = "quick" if args.quick else "paper"
    return placement_config_for(scale, scale, seed=args.seed)


def _cmd_table1(args: argparse.Namespace) -> str:
    rows = paper_infrastructure_table()
    lines = ["Table I — experimental infrastructure"]
    lines.append(f"{'Cluster':<12}{'Nodes':>6}  {'CPU':<22}{'Memory':>8}  Role")
    for row in rows:
        lines.append(
            f"{row['cluster']:<12}{row['nodes']:>6}  {row['cpu']:<22}"
            f"{row['memory_gb']:>6.0f}GB  {row['role']}"
        )
    return "\n".join(lines)


def _cmd_table2(args: argparse.Namespace) -> str:
    comparison = run_policy_comparison(config=_placement_config(args))
    lines = ["Table II — makespan and energy per policy", format_table2(comparison)]
    lines.append(
        f"POWER saves {comparison.energy_saving('POWER', 'RANDOM'):.1%} vs RANDOM "
        f"and {comparison.energy_saving('POWER', 'PERFORMANCE'):.1%} vs PERFORMANCE "
        f"(paper: 25% / 19%)"
    )
    return "\n".join(lines)


def _cmd_table3(args: argparse.Namespace) -> str:
    rows = simulated_clusters_table()
    lines = ["Table III — energy consumption of simulated clusters"]
    lines.append(f"{'Cluster':<10}{'Idle (W)':>10}{'Peak (W)':>10}")
    for row in rows:
        lines.append(
            f"{row['cluster']:<10}{row['idle_consumption']:>10.0f}"
            f"{row['peak_consumption']:>10.0f}"
        )
    return "\n".join(lines)


def _distribution_command(policy: str, figure: str) -> Callable[[argparse.Namespace], str]:
    def _command(args: argparse.Namespace) -> str:
        result = run_placement_experiment(policy, _placement_config(args))
        return format_task_distribution(
            result.metrics.tasks_per_node,
            title=f"{figure}: tasks per node ({policy})",
        )

    return _command


def _cmd_fig5(args: argparse.Namespace) -> str:
    comparison = run_policy_comparison(config=_placement_config(args))
    return "Figure 5 — energy per cluster (J)\n" + format_energy_per_cluster(comparison)


def _heterogeneity_command(kinds: int) -> Callable[[argparse.Namespace], str]:
    def _command(args: argparse.Namespace) -> str:
        tasks = 20 if args.quick else 50
        result = run_heterogeneity_experiment(
            kinds=kinds,
            tasks_per_client=tasks,
            random_seeds=tuple(args.seed + offset for offset in range(5)),
        )
        return format_metric_points(result)

    return _command


def _cmd_fig9(args: argparse.Namespace) -> str:
    config = adaptive_config_for(workload="quick" if args.quick else "paper")
    result = run_adaptive_experiment(config)
    return format_adaptive_series(result)


def _cmd_sweep(args: argparse.Namespace) -> str:
    if args.list:
        lines = ["Available grids:"]
        for name in named_grids():
            lines.append(f"  {name:<16}{len(grid(name))} scenarios")
        return "\n".join(lines)
    scenarios = grid(args.grid)
    if args.filter:
        scenarios = tuple(s for s in scenarios if args.filter in s.scenario_id)
    if not scenarios:
        return f"grid {args.grid!r}: no scenario matches filter {args.filter!r}"
    printer = SweepProgressPrinter()
    outcome = run_scenarios(
        scenarios,
        jobs=args.jobs,
        store=args.store,
        force=args.force,
        progress=printer,
    )
    return format_sweep_summary(outcome, title=f"Sweep {args.grid!r}")


_COMMANDS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "table1": ("print the Table I infrastructure", _cmd_table1),
    "table2": ("reproduce Table II (makespan & energy per policy)", _cmd_table2),
    "table3": ("print the Table III simulated cluster specs", _cmd_table3),
    "fig2": ("reproduce Figure 2 (POWER task distribution)", _distribution_command("POWER", "Figure 2")),
    "fig3": ("reproduce Figure 3 (PERFORMANCE task distribution)", _distribution_command("PERFORMANCE", "Figure 3")),
    "fig4": ("reproduce Figure 4 (RANDOM task distribution)", _distribution_command("RANDOM", "Figure 4")),
    "fig5": ("reproduce Figure 5 (energy per cluster)", _cmd_fig5),
    "fig6": ("reproduce Figure 6 (2 server types)", _heterogeneity_command(2)),
    "fig7": ("reproduce Figure 7 (4 server types)", _heterogeneity_command(4)),
    "fig9": ("reproduce Figure 9 (adaptive provisioning)", _cmd_fig9),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the green-scheduling paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (help_text, handler) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--quick",
            action="store_true",
            help="run a reduced configuration instead of the paper-scale one",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=0,
            help="base random seed for stochastic components (default: 0)",
        )
        sub.set_defaults(handler=handler)

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario grid in parallel with a cached result store"
    )
    sweep.add_argument(
        "--grid",
        default="default",
        help=f"named grid to run (default: 'default'; one of {', '.join(named_grids())})",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan scenarios out over (default: 1)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL result store; already-stored scenarios are not re-simulated",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="re-run every scenario even when the store already has its result",
    )
    sweep.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTRING",
        help="only run scenarios whose id contains SUBSTRING",
    )
    sweep.add_argument(
        "--list",
        action="store_true",
        help="list the available grids and their sizes, then exit",
    )
    sweep.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, run the selected command, print its report."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.handler(args)
    except ValueError as error:
        # Bad user input (unknown grid/preset, jobs < 1, corrupt store…):
        # report it like an argument error instead of a traceback.
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
