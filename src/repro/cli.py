"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro table2                 # Table II comparison
    python -m repro fig2                   # task distribution under POWER
    python -m repro fig3                   # task distribution under PERFORMANCE
    python -m repro fig4                   # task distribution under RANDOM
    python -m repro fig5                   # energy per cluster
    python -m repro fig6                   # heterogeneity study, 2 server types
    python -m repro fig7                   # heterogeneity study, 4 server types
    python -m repro fig9                   # adaptive provisioning scenario
    python -m repro table1                 # the experimental infrastructure
    python -m repro table3                 # the simulated cluster specs

Every command accepts ``--quick`` to run a reduced configuration (useful
for smoke tests) — the default is the paper-scale configuration used by
the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments.adaptive import AdaptiveExperimentConfig, run_adaptive_experiment
from repro.experiments.greenperf_eval import run_heterogeneity_experiment
from repro.experiments.placement import run_placement_experiment, run_policy_comparison
from repro.experiments.presets import (
    PlacementExperimentConfig,
    paper_infrastructure_table,
    simulated_clusters_table,
)
from repro.experiments.reporting import (
    format_adaptive_series,
    format_energy_per_cluster,
    format_metric_points,
    format_table2,
    format_task_distribution,
)

#: Reduced placement configuration used by ``--quick``.
QUICK_PLACEMENT = PlacementExperimentConfig(
    nodes_per_cluster=1,
    requests_per_core=4,
    task_flop=2.0e10,
    continuous_rate=1.0,
    sample_period=5.0,
)


def _placement_config(quick: bool) -> PlacementExperimentConfig:
    return QUICK_PLACEMENT if quick else PlacementExperimentConfig()


def _cmd_table1(args: argparse.Namespace) -> str:
    rows = paper_infrastructure_table()
    lines = ["Table I — experimental infrastructure"]
    lines.append(f"{'Cluster':<12}{'Nodes':>6}  {'CPU':<22}{'Memory':>8}  Role")
    for row in rows:
        lines.append(
            f"{row['cluster']:<12}{row['nodes']:>6}  {row['cpu']:<22}"
            f"{row['memory_gb']:>6.0f}GB  {row['role']}"
        )
    return "\n".join(lines)


def _cmd_table2(args: argparse.Namespace) -> str:
    comparison = run_policy_comparison(config=_placement_config(args.quick))
    lines = ["Table II — makespan and energy per policy", format_table2(comparison)]
    lines.append(
        f"POWER saves {comparison.energy_saving('POWER', 'RANDOM'):.1%} vs RANDOM "
        f"and {comparison.energy_saving('POWER', 'PERFORMANCE'):.1%} vs PERFORMANCE "
        f"(paper: 25% / 19%)"
    )
    return "\n".join(lines)


def _cmd_table3(args: argparse.Namespace) -> str:
    rows = simulated_clusters_table()
    lines = ["Table III — energy consumption of simulated clusters"]
    lines.append(f"{'Cluster':<10}{'Idle (W)':>10}{'Peak (W)':>10}")
    for row in rows:
        lines.append(
            f"{row['cluster']:<10}{row['idle_consumption']:>10.0f}"
            f"{row['peak_consumption']:>10.0f}"
        )
    return "\n".join(lines)


def _distribution_command(policy: str, figure: str) -> Callable[[argparse.Namespace], str]:
    def _command(args: argparse.Namespace) -> str:
        result = run_placement_experiment(policy, _placement_config(args.quick))
        return format_task_distribution(
            result.metrics.tasks_per_node,
            title=f"{figure}: tasks per node ({policy})",
        )

    return _command


def _cmd_fig5(args: argparse.Namespace) -> str:
    comparison = run_policy_comparison(config=_placement_config(args.quick))
    return "Figure 5 — energy per cluster (J)\n" + format_energy_per_cluster(comparison)


def _heterogeneity_command(kinds: int) -> Callable[[argparse.Namespace], str]:
    def _command(args: argparse.Namespace) -> str:
        tasks = 20 if args.quick else 50
        result = run_heterogeneity_experiment(kinds=kinds, tasks_per_client=tasks)
        return format_metric_points(result)

    return _command


def _cmd_fig9(args: argparse.Namespace) -> str:
    config = (
        AdaptiveExperimentConfig(duration=60 * 60.0) if args.quick else AdaptiveExperimentConfig()
    )
    result = run_adaptive_experiment(config)
    return format_adaptive_series(result)


_COMMANDS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "table1": ("print the Table I infrastructure", _cmd_table1),
    "table2": ("reproduce Table II (makespan & energy per policy)", _cmd_table2),
    "table3": ("print the Table III simulated cluster specs", _cmd_table3),
    "fig2": ("reproduce Figure 2 (POWER task distribution)", _distribution_command("POWER", "Figure 2")),
    "fig3": ("reproduce Figure 3 (PERFORMANCE task distribution)", _distribution_command("PERFORMANCE", "Figure 3")),
    "fig4": ("reproduce Figure 4 (RANDOM task distribution)", _distribution_command("RANDOM", "Figure 4")),
    "fig5": ("reproduce Figure 5 (energy per cluster)", _cmd_fig5),
    "fig6": ("reproduce Figure 6 (2 server types)", _heterogeneity_command(2)),
    "fig7": ("reproduce Figure 7 (4 server types)", _heterogeneity_command(4)),
    "fig9": ("reproduce Figure 9 (adaptive provisioning)", _cmd_fig9),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the green-scheduling paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (help_text, handler) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--quick",
            action="store_true",
            help="run a reduced configuration instead of the paper-scale one",
        )
        sub.set_defaults(handler=handler)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, run the selected command, print its report."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = args.handler(args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
