"""repro — reproduction of middleware-level dynamic green scheduling.

This package reproduces the system described in

    Balouek-Thomert, Caron, Lefèvre.
    "Energy-Aware Server Provisioning by Introducing Middleware-Level
    Dynamic Green Scheduling", HPPAC / IPDPSW 2015.

The package is organised as a stack of substrates with the paper's
contribution on top:

``repro.infrastructure``
    Models of heterogeneous servers, clusters and platforms: FLOPS,
    cores, idle/peak power, boot cost, wattmeter sampling, thermal and
    electricity-cost environments.

``repro.simulation``
    A small discrete-event simulation engine, task/queue models and
    metric collection (makespan, energy, per-node task counts).

``repro.workload``
    Synthetic workload generators reproducing the paper's burst +
    continuous request pattern and CPU-bound task definition.

``repro.middleware``
    An in-process model of the DIET middleware: server daemons (SeD),
    agent hierarchies (Master Agent / Local Agents), estimation vectors
    and plug-in schedulers.

``repro.core``
    The paper's contribution: the GreenPerf metric, provider/user
    preference model, the score function Sc, the greedy candidate
    selection (Algorithm 1) and the adaptive provisioning planner that
    reacts to energy-related events.

``repro.lab``
    The experiment-assembly layer: a :class:`~repro.lab.session.LabSession`
    composes platform × workload × policy × provisioning × timeline,
    validates the combination once and runs it through one shared path —
    any trace and any timeline are legal in any experiment family.

``repro.experiments``
    Ready-to-run reproductions of every table and figure in the paper's
    evaluation section, as thin post-processing over lab runs.

``repro.scenario``
    Declarative event timelines and fault injection: typed events
    (tariff changes, thermal excursions, node crash/recovery, workload
    bursts), TOML/JSON timeline files, seeded generators, and the wiring
    that schedules them alongside task events — the open scenario space
    behind ``repro sweep --timeline``.

``repro.runner``
    Declarative scenario sweeps over the experiments: frozen
    ``ScenarioSpec`` grids with deterministic content hashes, a
    process-pool executor that fans scenarios out across cores, and a
    JSONL result store that turns repeated sweeps into incremental work.
"""

from repro._version import __version__

__all__ = ["__version__"]
