"""``python -m repro`` — command-line access to the reproduction."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
