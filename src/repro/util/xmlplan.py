"""Provisioning-planning persistence (Fig. 8 of the paper).

The master agent shares its provisioning planning as a small XML document
whose entries look like::

    <timestamp value="1385896446">
      <temperature>23.5</temperature>
      <candidates>8</candidates>
      <electricity_cost>0.6</electricity_cost>
    </timestamp>

Reads and writes are guarded by a readers–writer lock
(:class:`repro.util.rwlock.ReadersWriterLock`) supplied by the caller so
that monitoring threads and the scheduler can share the file safely.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.util.rwlock import ReadersWriterLock


@dataclass(frozen=True, order=True)
class PlanningEntry:
    """One timestamped sample of the platform status.

    Attributes mirror the XML tags of Fig. 8: ``timestamp`` (seconds),
    ``temperature`` (degrees Celsius), ``candidates`` (number of candidate
    nodes available for computation) and ``electricity_cost`` (ratio of the
    current cost to the theoretical maximum cost, in ``[0, 1]``).
    """

    timestamp: float
    temperature: float
    candidates: int
    electricity_cost: float

    def to_element(self) -> ET.Element:
        """Serialise this entry as a ``<timestamp>`` XML element."""
        element = ET.Element("timestamp", {"value": repr(self.timestamp)})
        ET.SubElement(element, "temperature").text = repr(self.temperature)
        ET.SubElement(element, "candidates").text = str(self.candidates)
        ET.SubElement(element, "electricity_cost").text = repr(self.electricity_cost)
        return element

    @classmethod
    def from_element(cls, element: ET.Element) -> "PlanningEntry":
        """Parse a ``<timestamp>`` element back into an entry."""
        if element.tag != "timestamp":
            raise ValueError(f"expected <timestamp> element, got <{element.tag}>")
        try:
            timestamp = float(element.attrib["value"])
            temperature = float(_child_text(element, "temperature"))
            candidates = int(float(_child_text(element, "candidates")))
            cost = float(_child_text(element, "electricity_cost"))
        except KeyError as exc:
            raise ValueError(f"malformed planning entry: missing {exc}") from exc
        return cls(
            timestamp=timestamp,
            temperature=temperature,
            candidates=candidates,
            electricity_cost=cost,
        )


def _child_text(element: ET.Element, tag: str) -> str:
    child = element.find(tag)
    if child is None or child.text is None:
        raise KeyError(tag)
    return child.text


def write_planning(
    path: str | Path,
    entries: Iterable[PlanningEntry],
    *,
    lock: ReadersWriterLock | None = None,
) -> None:
    """Write ``entries`` to ``path`` as a provisioning-planning XML file.

    Entries are written sorted by timestamp so readers can scan forward.
    """
    entries = sorted(entries)
    root = ET.Element("provisioning_planning")
    for entry in entries:
        root.append(entry.to_element())
    payload = ET.tostring(root, encoding="unicode")

    def _write() -> None:
        Path(path).write_text(payload, encoding="utf-8")

    if lock is None:
        _write()
    else:
        with lock.write_locked():
            _write()


def read_planning(
    path: str | Path,
    *,
    lock: ReadersWriterLock | None = None,
) -> Sequence[PlanningEntry]:
    """Read a provisioning-planning XML file written by :func:`write_planning`."""

    def _read() -> str:
        return Path(path).read_text(encoding="utf-8")

    if lock is None:
        text = _read()
    else:
        with lock.read_locked():
            text = _read()

    root = ET.fromstring(text)
    if root.tag != "provisioning_planning":
        raise ValueError(
            f"expected <provisioning_planning> root element, got <{root.tag}>"
        )
    return tuple(PlanningEntry.from_element(child) for child in root)
