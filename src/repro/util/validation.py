"""Small validation helpers used across the package.

The scheduler configuration space in the paper is full of bounded
quantities (preferences in ``[-1, 1]`` or ``[0, 1]``, powers and FLOPS that
must be positive, ...).  Centralising the checks keeps the error messages
consistent and the call sites terse.
"""

from __future__ import annotations

import math
from numbers import Real


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero.

    Raises :class:`ValueError` otherwise.
    """
    _ensure_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    _ensure_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def ensure_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies within ``[low, high]`` (or ``(low, high)``)."""
    _ensure_finite_number(value, name)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return float(value)


def _ensure_finite_number(value: float, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
