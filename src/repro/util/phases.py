"""Per-phase wall-clock attribution for profiling runs.

``repro sweep --profile`` and ``tools/bench_kernel.py`` break a run's wall
time down into the kernel's four cost centres so future hot spots stay
attributable:

* ``estimation`` — refreshing dirty estimation vectors (the resident
  ranking's flush, or the full candidate collection on the fallback path);
* ``scoring`` — the placement election itself (policy sort / outcome
  construction);
* ``dispatch`` — everything else inside the engine loop (heap management,
  queueing, task lifecycle callbacks);
* ``energy`` — the energy accountant's segment bookkeeping.

:class:`PhaseTimer` attributes time *exclusively*: a stack of open phases
is maintained, and the interval between two transitions is booked to the
phase on top of the stack when the interval elapsed.  Instrumented code
guards every ``push``/``pop`` pair behind ``if timer is not None``, so
unprofiled runs (``timer=None`` everywhere) pay nothing.

The module-level *active timer* lets layers that never meet (the sweep
executor and the middleware driver) share one timer without threading it
through every constructor: the executor activates a fresh timer around a
profiled scenario, the driver picks it up at construction time.
"""

from __future__ import annotations

from time import perf_counter

#: Canonical phase names, in reporting order.
PHASES = ("estimation", "scoring", "dispatch", "energy")


class PhaseTimer:
    """Exclusive-attribution stack timer over named phases."""

    __slots__ = ("_totals", "_stack", "_last")

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._stack: list[str] = []
        self._last = 0.0

    def push(self, phase: str) -> None:
        """Open ``phase``; time since the last transition books to its parent."""
        now = perf_counter()
        stack = self._stack
        if stack:
            top = stack[-1]
            self._totals[top] = self._totals.get(top, 0.0) + (now - self._last)
        stack.append(phase)
        self._last = now

    def pop(self) -> None:
        """Close the innermost phase, booking its open interval."""
        now = perf_counter()
        top = self._stack.pop()
        self._totals[top] = self._totals.get(top, 0.0) + (now - self._last)
        self._last = now

    def totals(self) -> dict[str, float]:
        """Accumulated seconds per phase (phases never entered are absent)."""
        return dict(self._totals)


_ACTIVE: PhaseTimer | None = None


def activate(timer: PhaseTimer) -> PhaseTimer:
    """Install ``timer`` as the process-wide active timer and return it."""
    global _ACTIVE
    _ACTIVE = timer
    return timer


def deactivate() -> None:
    """Clear the active timer."""
    global _ACTIVE
    _ACTIVE = None


def active_timer() -> PhaseTimer | None:
    """The currently active timer, or ``None`` outside profiled runs."""
    return _ACTIVE
