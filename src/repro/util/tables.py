"""Fixed-width plain-text table rendering.

Shared by the experiment reporting (:mod:`repro.experiments.reporting`)
and the sweep runner (:mod:`repro.runner.reporting`): both render their
results the way the paper prints its tables — monospace columns, a header
row and a dashed rule.
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
