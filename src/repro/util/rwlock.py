"""A readers–writer lock.

The paper stores the provisioning planning in "a shared XML file using a
readers-writers lock" (Section IV-C, Fig. 8).  The scheduler (writer) and
the monitoring threads (readers) coordinate through this lock.  We provide
a writer-preferring readers–writer lock so that a stream of readers cannot
starve the scheduler's plan updates.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadersWriterLock:
    """Writer-preferring readers–writer lock.

    Multiple readers may hold the lock simultaneously; writers get
    exclusive access.  Once a writer is waiting, newly arriving readers
    block until the writer has been served.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer_active = False

    # -- reader side -----------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Acquire the lock for reading.  Returns ``True`` on success."""
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer_active and self._waiting_writers == 0,
                timeout=timeout,
            )
            if not ok:
                return False
            self._active_readers += 1
            return True

    def release_read(self) -> None:
        """Release a previously acquired read lock."""
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read() without a matching acquire_read()")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # -- writer side -----------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> bool:
        """Acquire the lock for writing.  Returns ``True`` on success."""
        with self._cond:
            self._waiting_writers += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer_active and self._active_readers == 0,
                    timeout=timeout,
                )
                if not ok:
                    return False
                self._writer_active = True
                return True
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        """Release a previously acquired write lock."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write() without a matching acquire_write()")
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers --------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (mainly for tests) ----------------------------------
    @property
    def active_readers(self) -> int:
        """Number of readers currently holding the lock."""
        with self._cond:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        """Whether a writer currently holds the lock."""
        with self._cond:
            return self._writer_active
