"""Streaming statistics helpers.

The dynamic GreenPerf estimation averages a server's power consumption
"over the execution of all past requests" (Section III-A) and the
Grid'5000 wattmeters average "more than 6,000 measurements" (Section IV).
These helpers provide numerically stable running means/variances and
fixed-size sliding windows used by the power estimators.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field


class RunningStats:
    """Welford running mean / variance over a stream of samples."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one sample."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values) -> None:
        """Incorporate an iterable of samples."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean of observed samples (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of observed samples."""
        return self._m2 / self._count if self._count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample observed (``nan`` when empty)."""
        return self._minimum if self._count else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample observed (``nan`` when empty)."""
        return self._maximum if self._count else math.nan

    @property
    def total(self) -> float:
        """Sum of observed samples."""
        return self._mean * self._count


@dataclass
class WindowedAverage:
    """Average over the last ``window`` samples.

    Used for the dynamic power estimate: the estimation vector reports a
    power figure "based on recent activity rather than on an initial
    benchmark".
    """

    window: int = 6000
    _samples: deque = field(default_factory=deque, repr=False)
    _sum: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")

    def add(self, value: float) -> None:
        """Push one sample, evicting the oldest if the window is full."""
        value = float(value)
        self._samples.append(value)
        self._sum += value
        if len(self._samples) > self.window:
            self._sum -= self._samples.popleft()

    @property
    def count(self) -> int:
        """Number of samples currently held (≤ window)."""
        return len(self._samples)

    @property
    def value(self) -> float:
        """Current windowed average (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    def clear(self) -> None:
        """Drop all samples."""
        self._samples.clear()
        self._sum = 0.0
