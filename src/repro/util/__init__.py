"""Shared utilities: locking, XML provisioning plans, statistics, validation."""

from repro.util.rwlock import ReadersWriterLock
from repro.util.stats import RunningStats, WindowedAverage
from repro.util.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
)
from repro.util.xmlplan import PlanningEntry, read_planning, write_planning

__all__ = [
    "ReadersWriterLock",
    "RunningStats",
    "WindowedAverage",
    "ensure_in_range",
    "ensure_non_negative",
    "ensure_positive",
    "PlanningEntry",
    "read_planning",
    "write_planning",
]
