"""One composable assembly path for every experiment of the reproduction.

A :class:`LabSession` is built from orthogonal components
(:mod:`repro.lab.components`): platform source × workload source ×
scheduling policy × optional provisioning × optional event timeline ×
energy/trace modes.  :meth:`LabSession.validate` checks the combination
once; :meth:`LabSession.run` assembles hierarchy, driver and scenario
application in one place and returns a uniform
:class:`~repro.lab.observe.LabResult`.

Three execution backends cover the evaluation:

* the **middleware backend** (``"table1"`` platforms) drives the full
  DIET stack — agent hierarchy, plug-in scheduler, discrete-event engine,
  energy accountant — with an open-loop workload (synthetic generator or
  replayed trace) or the adaptive closed-loop capacity client, optionally
  under a :class:`~repro.core.provisioning.ProvisioningPlanner` and a
  fault-injecting :class:`~repro.scenario.events.EventTimeline`;
* the **point backend** (``"server-types"`` platforms) runs the
  heterogeneity study's engine-less closed loop over single-task
  servers, now also accepting trace workloads (open-loop replay) and
  timelines (node failures become server-unavailability windows; other
  event kinds are inert because the study has no planner);
* the **queue backend** (queue-family policies — FCFS, EASY,
  CONSERVATIVE, DRF of :mod:`repro.policy.queue`) batch-schedules an
  open-loop workload on the platform's aggregated capacity: backfill
  reservations, multi-tenant fair share, and requeue-or-fail fault
  semantics under ``NodeFailure``/``NodeRecovery`` timeline events.

Any workload × any policy × provisioning × any timeline composes here,
so e.g. a real SWF week can replay through adaptive provisioning under a
crash storm — a combination no single pre-lab experiment module could
express.  The golden suite (``tests/test_goldens.py``) pins the
pre-existing Table II and Figure 9 paths to the exact same bits through
this assembly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.lab.components import (
    LabError,
    PlatformSource,
    PolicySource,
    ProvisioningSource,
    ServeSource,
    TimelineLike,
    WorkloadSource,
    resolve_timeline,
)
from repro.lab.observe import (
    LabResult,
    PointSummary,
    middleware_detail,
    middleware_metrics,
    point_metrics,
    provisioned_metrics,
    queue_energy,
    queue_metrics,
    series_value_at,
    windowed_power,
)
from repro.middleware.driver import ENERGY_MODES, TRACE_LEVELS, MiddlewareSimulation
from repro.middleware.estimation import EstimationTags, EstimationVector
from repro.middleware.hierarchy import build_hierarchy
from repro.middleware.plugin_scheduler import CandidateEntry
from repro.middleware.requests import ServiceRequest
from repro.scenario.apply import apply_timeline
from repro.scenario.events import EventTimeline, NodeFailure, NodeRecovery
from repro.simulation.task import Task
from repro.util import phases
from repro.util.validation import ensure_positive


@dataclass
class LabSession:
    """A validated composition of experiment components.

    >>> from repro.workload.generator import SteadyRateWorkload
    >>> session = LabSession(
    ...     platform=PlatformSource.table1(1),
    ...     workload=WorkloadSource.from_generator(
    ...         SteadyRateWorkload(total_tasks=3, rate=1.0, flop_per_task=1e9)),
    ...     policy=PolicySource("POWER"),
    ... )
    >>> session.run().completed_tasks
    3
    """

    platform: PlatformSource
    workload: WorkloadSource
    policy: PolicySource = field(default_factory=PolicySource)
    provisioning: ProvisioningSource | None = None
    timeline: TimelineLike = None
    horizon: float | None = None
    energy_mode: str = "quantized"
    trace_level: str = "full"
    sample_period: float = 1.0
    base_temperature: float = 21.0
    requeue_on_failure: bool = True
    #: Queue backend only: cap the scheduled capacity below the
    #: platform's core count (e.g. replay a trace at its native
    #: ``MaxProcs`` so queues actually form).  ``None`` uses every core.
    queue_cores: int | None = None

    def __post_init__(self) -> None:
        self._resolved_timeline: EventTimeline | None = None
        self._validated = False

    # -- validation ---------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Which execution backend the platform + policy select.

        ``"server-types"`` platforms run the point study; queue-family
        policies (:mod:`repro.policy.queue`) run the batch queue backend
        — except under a ``"served"`` workload, where arrivals are live
        and the policy runs as its per-request placement adapter on the
        middleware stack.
        """
        if self.platform.kind == "server-types":
            return "point"
        if self.policy.resolved_family == "queue" and self.workload.kind != "served":
            return "queue"
        return "middleware"

    def validate(self) -> "LabSession":
        """Check the component combination once; raises :class:`LabError`.

        Returns ``self`` so construction and validation chain.
        """
        if self.energy_mode not in ENERGY_MODES:
            raise LabError(
                f"energy_mode must be one of {ENERGY_MODES}, got {self.energy_mode!r}"
            )
        if self.trace_level not in TRACE_LEVELS:
            raise LabError(
                f"trace_level must be one of {TRACE_LEVELS}, got {self.trace_level!r}"
            )
        ensure_positive(self.sample_period, "sample_period")
        if self.horizon is not None:
            ensure_positive(self.horizon, "horizon")
        self._resolved_timeline = resolve_timeline(self.timeline)

        if self.queue_cores is not None and self.backend != "queue":
            raise LabError(
                "queue_cores caps the batch queue backend's capacity; it has "
                f"no meaning on the {self.backend!r} backend"
            )
        if self.backend == "point":
            if self.policy.resolved_family == "queue":
                raise LabError(
                    "queue policies run their batch semantics on table1 "
                    "platforms; on server-types, force the placement "
                    "adapter with PolicySource(..., family='plugin')"
                )
            if self.provisioning is not None:
                raise LabError(
                    "the single-task point study has no provisioning axis; "
                    "use a table1 platform to compose provisioning"
                )
            if self.workload.kind not in ("point-load", "trace"):
                raise LabError(
                    f"server-types platforms take 'point-load' or 'trace' "
                    f"workloads, not {self.workload.kind!r}"
                )
            if self.horizon is not None:
                raise LabError(
                    "the point study runs to workload completion; drop horizon"
                )
        elif self.backend == "queue":
            if not self.workload.open_loop:
                raise LabError(
                    "the queue backend schedules a pre-computed job stream: "
                    "use a generator or trace workload, not "
                    f"{self.workload.kind!r} (or force the per-request "
                    "adapter with PolicySource(..., family='plugin'))"
                )
            if self.provisioning is not None:
                raise LabError(
                    "the queue backend has no provisioning axis: capacity "
                    "changes come from NodeFailure/NodeRecovery timeline "
                    "events"
                )
            if self.policy.seed is not None or self.policy.preference is not None:
                raise LabError(
                    "queue policies are deterministic and preference-free; "
                    "drop seed/preference from the PolicySource"
                )
            if self.queue_cores is not None and self.queue_cores < 1:
                raise LabError(f"queue_cores must be >= 1, got {self.queue_cores}")
        else:
            if self.workload.kind == "point-load":
                raise LabError(
                    "'point-load' workloads belong to server-types platforms; "
                    "use a generator, trace or capacity workload on table1"
                )
            if self.workload.kind == "served":
                if self.provisioning is not None:
                    raise LabError(
                        "served sessions take no provisioning: the planner's "
                        "periodic checks would interleave with live arrivals "
                        "on a schedule no client controls"
                    )
                if self.horizon is not None:
                    raise LabError(
                        "served sessions have no horizon; the daemon runs "
                        "until it is asked to shut down"
                    )
            if self.workload.kind == "capacity":
                if self.provisioning is None:
                    raise LabError(
                        "the capacity client tops requests up to the candidate "
                        "pool; it requires a ProvisioningSource"
                    )
            if self.provisioning is not None and self.horizon is None:
                raise LabError(
                    "provisioned sessions need a finite horizon: the planner "
                    "re-checks forever, so the run would never terminate"
                )
        self._validated = True
        return self

    # -- execution ----------------------------------------------------------------------
    def run(self) -> LabResult:
        """Validate, assemble and execute the session."""
        if not self._validated:
            self.validate()
        if self.workload.kind == "served":
            raise LabError(
                "served sessions do not run to completion; open them with "
                "open_state() or open_service() and drive them over the wire"
            )
        if self.backend == "point":
            return self._run_point_study()
        if self.backend == "queue":
            return self._run_queue()
        return self._run_middleware()

    # -- serving backend ----------------------------------------------------------------
    def open_state(self):
        """Assemble the session as resident serving state.

        Only ``"served"`` workloads open; the stack (platform, hierarchy,
        engine, energy accountant, applied timeline) is exactly the one
        :meth:`run` would assemble, minus the workload — requests arrive
        through :meth:`~repro.serve.state.ServeState.place_batch`.
        ``repro.serve`` is imported lazily so batch experiments never
        load the serving layer.
        """
        if not self._validated:
            self.validate()
        if self.workload.kind != "served":
            raise LabError(
                f"only 'served' workloads open as a service, not "
                f"{self.workload.kind!r}; use WorkloadSource.served()"
            )
        from repro.serve.state import ServeState

        return ServeState.assemble(
            platform=self.platform,
            policy=self.policy,
            timeline=self._resolved_timeline,
            energy_mode=self.energy_mode,
            trace_level=self.trace_level,
            base_temperature=self.base_temperature,
            requeue_on_failure=self.requeue_on_failure,
        )

    def open_service(self, serve: "ServeSource | None" = None):
        """Open the session as an (unstarted) placement daemon.

        ``serve`` carries the admission quotas and socket parameters
        (:class:`~repro.lab.components.ServeSource`); the returned
        :class:`~repro.serve.service.PlacementService` still needs its
        ``start()``/``run()`` awaited on an event loop.
        """
        from repro.serve.admission import AdmissionController
        from repro.serve.service import PlacementService

        serve = serve if serve is not None else ServeSource()
        return PlacementService(
            self.open_state(),
            admission=AdmissionController(
                quota_rate=serve.quota_rate,
                quota_burst=serve.quota_burst,
                queue_limit=serve.queue_limit,
            ),
            host=serve.host,
            port=serve.port,
            batch_window=serve.batch_window,
        )

    # -- middleware backend -------------------------------------------------------------
    def _run_middleware(self) -> LabResult:
        timeline = self._resolved_timeline
        scheduler = self.policy.build()
        platform = self.platform.build_platform()
        tasks: tuple[Task, ...] | None = None
        if self.workload.open_loop:
            tasks = self.workload.resolve_tasks(platform.total_cores)
        master, seds = build_hierarchy(platform, scheduler=scheduler, workload=tasks)
        simulation = MiddlewareSimulation(
            platform,
            master,
            seds,
            sample_period=self.sample_period,
            policy_name=scheduler.name,
            energy_mode=self.energy_mode,
            trace_level=self.trace_level,
        )

        electricity = thermal = None
        if self.provisioning is not None or timeline is not None:
            electricity, thermal, _ = apply_timeline(
                simulation,
                timeline if timeline is not None else EventTimeline(),
                base_temperature=self.base_temperature,
                requeue=self.requeue_on_failure,
            )
        planner = None
        if self.provisioning is not None:
            planner = self.provisioning.build(
                platform=platform,
                master=master,
                electricity=electricity,
                thermal=thermal,
                seds=seds,
                engine=simulation.engine,
                trace=simulation.trace,
            )
            planner.install()
            planner.start(first_check_at=self.provisioning.first_check_at)

        if self.workload.kind == "capacity":
            self._start_capacity_client(simulation, platform, planner, timeline)
        else:
            simulation.submit_workload(tasks)
        result = simulation.run(until=self.horizon)

        energy_log = simulation.energy_log
        if planner is not None:
            duration = self.horizon
            candidate_series = planner.candidate_history()
            metrics = provisioned_metrics(
                duration=duration,
                total_energy=(
                    energy_log.total_energy if energy_log is not None else 0.0
                ),
                completed_tasks=result.metrics.task_count,
                final_candidates=int(series_value_at(candidate_series, duration)),
                events_processed=result.events_processed,
                failed_tasks=result.failed_tasks,
                rejected_tasks=result.rejected_tasks,
            )
            return LabResult(
                backend="middleware",
                metrics=metrics,
                detail={
                    "candidate_series": [
                        [time, count] for time, count in candidate_series
                    ],
                },
                simulation=result,
                timeline=timeline,
                candidate_series=candidate_series,
                power_series=windowed_power(
                    energy_log, window=planner.config.check_period, duration=duration
                ),
                planning_entries=tuple(planner.planning_entries),
                total_nodes=len(platform),
                horizon=self.horizon,
            )
        return LabResult(
            backend="middleware",
            metrics=middleware_metrics(result, include_faults=timeline is not None),
            detail=middleware_detail(result),
            simulation=result,
            timeline=timeline,
            total_nodes=len(platform),
            horizon=self.horizon,
        )

    def _start_capacity_client(
        self,
        simulation: MiddlewareSimulation,
        platform,
        planner,
        timeline: EventTimeline | None,
    ) -> None:
        """The adaptive experiment's closed-loop client.

        Every tick, the in-flight request count is topped up to the
        capacity (cores) of the current candidate nodes, stopping new
        submissions shortly before the horizon so the last tasks can
        complete within the observation window.
        """
        workload = self.workload
        submission_deadline = self.horizon - planner.config.check_period

        def _capacity() -> int:
            total = 0
            for name in planner.candidate_nodes:
                node = platform.node(name)
                if node.is_available:
                    total += node.spec.cores
            return max(total, 1)

        def _client_tick() -> None:
            now = simulation.engine.now
            if now <= submission_deadline:
                target = _capacity()
                multiplier = (
                    timeline.arrival_multiplier(now) if timeline is not None else 1.0
                )
                if multiplier != 1.0:
                    # Bursts scale the closed-loop pressure target; the
                    # equality guard keeps burst-free runs (Figure 9)
                    # bit-identical to the historical inline-event path.
                    target = max(1, round(target * multiplier))
                deficit = target - simulation.in_flight_tasks
                for _ in range(max(deficit, 0)):
                    simulation.inject_task(
                        Task(
                            flop=workload.task_flop,
                            arrival_time=now,
                            client=workload.client,
                        )
                    )
                simulation.engine.schedule_in(
                    workload.client_tick, _client_tick, label="client-tick"
                )

        simulation.engine.schedule(0.0, _client_tick, label="client-tick")

    # -- queue backend ------------------------------------------------------------------
    def _run_queue(self) -> LabResult:
        """Batch scheduling of an open-loop workload by a queue policy.

        The platform aggregates into one capacity (optionally capped by
        ``queue_cores``); tasks become :class:`~repro.policy.queue.jobs.QueueJob`
        records by inverting the flop model at the SWF mapping's
        reference core speed, so trace-derived jobs recover their real
        runtimes and requested wall limits.  ``NodeFailure`` /
        ``NodeRecovery`` timeline events become capacity drops/returns
        sized by the named node's cores; the simulator replans each
        pass, so a crash invalidates reservations and displaced jobs
        follow the same requeue-or-fail rule as the middleware driver.
        ``repro.policy.queue`` is imported lazily, mirroring how the
        serving layer stays out of batch runs.
        """
        from repro.policy.queue.jobs import jobs_from_tasks
        from repro.policy.queue.policies import queue_policy_by_name
        from repro.policy.queue.simulator import run_queue_simulation
        from repro.workload.ingest.mapping import DEFAULT_FLOPS_PER_CORE

        timeline = self._resolved_timeline
        platform = self.platform.build_platform()
        capacity = (
            self.queue_cores if self.queue_cores is not None else platform.total_cores
        )
        tasks = self.workload.resolve_tasks(capacity)
        jobs = jobs_from_tasks(tasks, flops_per_core=DEFAULT_FLOPS_PER_CORE)
        capacity_events: list[tuple[float, int]] = []
        if timeline is not None:
            for event in timeline.node_events:
                cores = platform.node(event.node).spec.cores
                if isinstance(event, NodeFailure):
                    capacity_events.append((event.time, -cores))
                elif isinstance(event, NodeRecovery):
                    capacity_events.append((event.time, cores))
        schedule = run_queue_simulation(
            jobs,
            capacity=capacity,
            policy=queue_policy_by_name(self.policy.name),
            capacity_events=capacity_events,
            horizon=self.horizon,
            requeue_limit=1 if self.requeue_on_failure else 0,
        )
        total_cores = platform.total_cores
        idle_per_core = (
            sum(node.spec.idle_power for node in platform.nodes) / total_cores
        )
        peak_per_core = (
            sum(node.spec.peak_power for node in platform.nodes) / total_cores
        )
        span = self.horizon if self.horizon is not None else schedule.makespan
        total_energy = queue_energy(
            schedule,
            idle_power_per_core=idle_per_core,
            busy_power_delta_per_core=peak_per_core - idle_per_core,
            span=span,
        )
        return LabResult(
            backend="queue",
            metrics=queue_metrics(schedule, total_energy=total_energy),
            detail={
                "policy": schedule.policy_name,
                "capacity": capacity,
                "outcomes": dict(schedule.counts),
                "capacity_steps": [list(step) for step in schedule.capacity_steps],
            },
            queue=schedule,
            timeline=timeline,
            total_nodes=len(platform),
            horizon=self.horizon,
        )

    # -- point backend ------------------------------------------------------------------
    def _run_point_study(self) -> LabResult:
        timeline = self._resolved_timeline
        scheduler = self.policy.build()
        servers: list[_SimServer] = []
        for spec in self.platform.server_specs():
            for index in range(self.platform.servers_per_type):
                servers.append(
                    _SimServer(
                        name=f"{spec.cluster}-{index}",
                        kind=spec.cluster,
                        flops=spec.flops_per_core,
                        peak_power=spec.peak_power,
                    )
                )
        windows = _availability_windows(timeline)

        # Vectorised election: policies exposing ``point_metric`` score the
        # whole candidate axis in one numpy expression over these columnar
        # arrays (the fleet is static, so they are built once).  Electing
        # min(metric, name) equals ``scheduler.sort(...)[0]`` bit-for-bit —
        # the array arithmetic is the same float64 arithmetic.
        point_metric = getattr(scheduler, "point_metric", None)
        server_names = [server.name for server in servers]
        flops_column = np.array([server.flops for server in servers], dtype=np.float64)
        power_column = np.array(
            [server.peak_power for server in servers], dtype=np.float64
        )

        def _available(server: _SimServer, now: float) -> bool:
            return _next_available(windows.get(server.name, ()), now) == now

        def _ready_time(server: _SimServer, now: float) -> float:
            """Earliest instant >= ``now`` the server could accept a task."""
            return _next_available(
                windows.get(server.name, ()), max(now, server.busy_until)
            )

        energies: list[float] = []
        durations: list[float] = []
        tasks_per_type: dict[str, int] = {}
        makespan = 0.0

        def _elect(request: ServiceRequest, now: float) -> _SimServer:
            """The server ``scheduler.sort`` would rank first, without sorting.

            The vectorised path scores only the free servers' columns and
            takes ``min(metric, name)``; every point-study candidate is
            free with zero waiting time, so this is exactly the head of the
            policy's ranking.
            """
            free = [
                index
                for index, server in enumerate(servers)
                if server.busy_until <= now and _available(server, now)
            ]
            metric = point_metric(
                request, flops=flops_column[free], power=power_column[free]
            )
            best = metric.min()
            ties = np.flatnonzero(metric == best)
            if ties.size == 1:
                winner = free[int(ties[0])]
            else:
                winner = min(
                    (free[int(tie)] for tie in ties),
                    key=lambda index: server_names[index],
                )
            return servers[winner]

        phase_timer = phases.active_timer()

        def _execute(task: Task, now: float) -> float:
            nonlocal makespan
            request = ServiceRequest.from_task(task)
            if phase_timer is not None:
                phase_timer.push("scoring")
            if point_metric is not None:
                server = _elect(request, now)
            else:
                candidates = [
                    CandidateEntry.from_vector(server.estimation(now))
                    for server in servers
                    if server.busy_until <= now and _available(server, now)
                ]
                ranked = scheduler.sort(request, candidates)
                elected = ranked[0].server
                server = next(s for s in servers if s.name == elected)
            if phase_timer is not None:
                phase_timer.pop()
            duration = task.flop / server.flops
            energy = server.peak_power * duration
            server.busy_until = now + duration
            energies.append(energy)
            durations.append(duration)
            tasks_per_type[server.kind] = tasks_per_type.get(server.kind, 0) + 1
            makespan = max(makespan, now + duration)
            return duration

        def _earliest_ready(now: float) -> float:
            ready_at = min(_ready_time(server, now) for server in servers)
            if not math.isfinite(ready_at):
                raise LabError(
                    "every server is failed with no recovery in the timeline; "
                    "the point study cannot make progress"
                )
            return ready_at

        if self.workload.kind == "trace":
            # Open-loop replay: tasks start in arrival order, each on the
            # earliest instant a server is both idle and not failed.
            for task in self.workload.resolve_tasks():
                now = task.arrival_time
                while not any(
                    server.busy_until <= now and _available(server, now)
                    for server in servers
                ):
                    now = _earliest_ready(now)
                _execute(task, now)
        else:
            # Closed loop: each client keeps exactly one request in
            # flight; the next submission happens when the previous task
            # completes.  A heap of (ready_time, client_id) keeps the
            # interleaving deterministic.
            clients = self.workload.clients
            ready: list[tuple[float, int]] = [(0.0, client) for client in range(clients)]
            heapq.heapify(ready)
            remaining = {client: self.workload.tasks_per_client for client in range(clients)}
            while ready:
                now, client = heapq.heappop(ready)
                if remaining[client] <= 0:
                    continue
                if not any(
                    server.busy_until <= now and _available(server, now)
                    for server in servers
                ):
                    # No server available: wait until the earliest one frees up.
                    heapq.heappush(ready, (_earliest_ready(now), client))
                    continue
                task = Task(
                    flop=self.workload.task_flop,
                    arrival_time=now,
                    client=f"client-{client}",
                )
                duration = _execute(task, now)
                remaining[client] -= 1
                if remaining[client] > 0:
                    heapq.heappush(ready, (now + duration, client))

        point = PointSummary.from_executions(
            policy=scheduler.name,
            energies=energies,
            durations=durations,
            tasks_per_type=tasks_per_type,
            makespan=makespan,
        )
        return LabResult(
            backend="point",
            metrics=point_metrics(point),
            detail={"tasks_per_type": dict(point.tasks_per_type)},
            point=point,
            timeline=timeline,
            total_nodes=len(servers),
        )


@dataclass
class _SimServer:
    """One single-task server of the point-study closed-loop simulation."""

    name: str
    kind: str
    flops: float
    peak_power: float
    busy_until: float = 0.0

    def estimation(self, now: float) -> EstimationVector:
        """Static estimation vector: peak power and nameplate performance."""
        free = now >= self.busy_until
        vector = EstimationVector(server=self.name, cluster=self.kind)
        vector.set(EstimationTags.FLOPS_PER_CORE, self.flops)
        vector.set(EstimationTags.TOTAL_FLOPS, self.flops)
        vector.set(EstimationTags.FREE_CORES, 1.0 if free else 0.0)
        vector.set(EstimationTags.TOTAL_CORES, 1.0)
        vector.set(EstimationTags.WAITING_TIME, max(self.busy_until - now, 0.0))
        vector.set(EstimationTags.MEAN_POWER, self.peak_power)
        vector.set(EstimationTags.IDLE_POWER, self.peak_power)
        vector.set(EstimationTags.PEAK_POWER, self.peak_power)
        vector.set(EstimationTags.BOOT_POWER, 0.0)
        vector.set(EstimationTags.BOOT_TIME, 0.0)
        vector.set(EstimationTags.NODE_AVAILABLE, 1.0)
        return vector


def _availability_windows(
    timeline: EventTimeline | None,
) -> Mapping[str, tuple[tuple[float, float], ...]]:
    """Per-node ``[failed_at, repaired_at)`` windows of a timeline.

    A failure never repaired yields an infinite window.  The timeline's
    crash/repair protocol (enforced at construction) guarantees windows
    are well-nested per node.
    """
    if timeline is None:
        return {}
    open_at: dict[str, float] = {}
    windows: dict[str, list[tuple[float, float]]] = {}
    for event in timeline.node_events:
        if isinstance(event, NodeFailure):
            open_at[event.node] = event.time
        elif isinstance(event, NodeRecovery):
            windows.setdefault(event.node, []).append(
                (open_at.pop(event.node), event.time)
            )
    for node, start in open_at.items():
        windows.setdefault(node, []).append((start, math.inf))
    return {node: tuple(sorted(spans)) for node, spans in windows.items()}


def _next_available(
    windows: Sequence[tuple[float, float]], time: float
) -> float:
    """The earliest instant >= ``time`` outside every failure window.

    >>> _next_available(((60.0, 120.0),), 90.0)
    120.0
    >>> _next_available((), 90.0)
    90.0
    """
    for start, end in windows:
        if start <= time < end:
            time = end
    return time
