"""Uniform observation of a lab run: result object and metric extraction.

Every :meth:`~repro.lab.session.LabSession.run` returns a
:class:`LabResult` — one shape for all experiment families — from which
each family post-processes its figures:

* the placement experiment reads ``simulation`` (the full
  :class:`~repro.middleware.driver.SimulationResult`: per-node task
  histograms, per-cluster energy);
* the heterogeneity study reads ``point`` (a :class:`PointSummary` of
  mean energy / completion time);
* the adaptive experiment reads ``candidate_series`` / ``power_series``
  / ``planning_entries`` (the Figure 9 trajectory).

``metrics`` is the flat scalar summary shared by the sweep runner and
``repro lab run``; the helpers below build it from the same sources the
pre-lab experiment modules used, so refactored paths stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.middleware.driver import SimulationResult
from repro.policy.queue.simulator import QueueSchedule
from repro.scenario.events import EventTimeline


def greenperf_metric(total_energy: float, task_count: float) -> float:
    """Run-level GreenPerf: energy per completed task (power/throughput).

    >>> greenperf_metric(100.0, 4.0)
    25.0
    >>> greenperf_metric(100.0, 0.0)
    0.0
    """
    return total_energy / task_count if task_count else 0.0


def windowed_power(
    energy_log, *, window: float, duration: float
) -> tuple[tuple[float, float], ...]:
    """Average platform power per ``window`` seconds (the crosses of Figure 9)."""
    if energy_log is None:
        return ()
    trace = energy_log.power_trace()
    if trace.size == 0:
        return ()
    times = trace[:, 0]
    watts = trace[:, 1]
    series: list[tuple[float, float]] = []
    start = 0.0
    while start < duration:
        end = start + window
        mask = (times >= start) & (times < end)
        if mask.any():
            series.append((end, float(watts[mask].mean())))
        start = end
    return tuple(series)


def series_value_at(
    series: Sequence[tuple[float, float]], time: float, default: float = 0
):
    """The value of a step series in effect at ``time``.

    >>> series_value_at([(0.0, 4), (600.0, 6)], 300.0)
    4
    >>> series_value_at([], 300.0)
    0
    """
    value = default
    for step_time, step_value in series:
        if step_time <= time:
            value = step_value
        else:
            break
    return value


@dataclass(frozen=True)
class PointSummary:
    """The heterogeneity study's figure coordinates for one policy run."""

    policy: str
    mean_energy_per_task: float
    mean_completion_time: float
    total_energy: float
    makespan: float
    tasks_per_type: Mapping[str, int]

    @classmethod
    def from_executions(
        cls,
        *,
        policy: str,
        energies: Sequence[float],
        durations: Sequence[float],
        tasks_per_type: Mapping[str, int],
        makespan: float,
    ) -> "PointSummary":
        """Aggregate per-task energies/durations into the figure coordinates."""
        return cls(
            policy=policy,
            mean_energy_per_task=float(np.mean(energies)) if energies else 0.0,
            mean_completion_time=float(np.mean(durations)) if durations else 0.0,
            total_energy=float(np.sum(energies)),
            makespan=makespan,
            tasks_per_type=dict(tasks_per_type),
        )


@dataclass(frozen=True)
class LabResult:
    """Everything one lab run produced, in a family-independent shape."""

    backend: str  #: ``"middleware"``, ``"point"`` or ``"queue"``
    metrics: Mapping[str, float]
    detail: Mapping[str, object] = field(default_factory=dict)
    #: Full driver result (middleware backend only).
    simulation: SimulationResult | None = None
    #: Figure 6/7 coordinates (point backend only).
    point: PointSummary | None = None
    #: Full batch schedule (queue backend only).
    queue: QueueSchedule | None = None
    #: The resolved timeline the run was driven by, if any.
    timeline: EventTimeline | None = None
    #: Provisioning trajectory (sessions with a provisioning source).
    candidate_series: tuple[tuple[float, int], ...] = ()
    power_series: tuple[tuple[float, float], ...] = ()
    planning_entries: tuple = ()
    total_nodes: int = 0
    horizon: float | None = None

    @property
    def completed_tasks(self) -> int:
        """Completed task count, whichever backend produced it."""
        return int(self.metrics.get("task_count", 0.0))

    @property
    def total_energy(self) -> float:
        """Total platform energy (J)."""
        return float(self.metrics.get("total_energy", 0.0))

    def candidates_at(self, time: float) -> int:
        """Candidate count in effect at simulated ``time`` (s)."""
        return int(series_value_at(self.candidate_series, time))


# -- per-backend metric extraction ------------------------------------------------------


def middleware_metrics(
    result: SimulationResult, *, include_faults: bool = False
) -> dict[str, float]:
    """The flat metric summary of an open-loop middleware run.

    Matches the historical placement-family sweep metrics exactly;
    ``include_faults`` adds the displaced-task counters (timeline runs).
    """
    metrics = result.metrics
    summary = {
        "makespan": metrics.makespan,
        "total_energy": metrics.total_energy,
        "task_count": float(metrics.task_count),
        "mean_response_time": metrics.mean_response_time,
        "mean_queue_delay": metrics.mean_queue_delay,
        "greenperf": greenperf_metric(metrics.total_energy, metrics.task_count),
        "events": float(result.events_processed),
    }
    if include_faults:
        summary["failed_tasks"] = float(result.failed_tasks)
        summary["rejected_tasks"] = float(result.rejected_tasks)
    return summary


def middleware_detail(result: SimulationResult) -> dict[str, object]:
    """The per-node/cluster histograms of an open-loop middleware run."""
    metrics = result.metrics
    return {
        "tasks_per_node": dict(metrics.tasks_per_node),
        "tasks_per_cluster": dict(metrics.tasks_per_cluster),
        "energy_per_cluster": dict(metrics.energy_per_cluster),
    }


def provisioned_metrics(
    *,
    duration: float,
    total_energy: float,
    completed_tasks: int,
    final_candidates: int,
    events_processed: int,
    failed_tasks: int,
    rejected_tasks: int,
) -> dict[str, float]:
    """The flat metric summary of a provisioned (adaptive-family) run.

    Matches the historical adaptive-family sweep metrics exactly.
    """
    return {
        "makespan": duration,
        "total_energy": total_energy,
        "task_count": float(completed_tasks),
        "final_candidates": float(final_candidates),
        "greenperf": greenperf_metric(total_energy, float(completed_tasks)),
        "events": float(events_processed),
        "failed_tasks": float(failed_tasks),
        "rejected_tasks": float(rejected_tasks),
    }


def queue_energy(
    schedule: QueueSchedule,
    *,
    idle_power_per_core: float,
    busy_power_delta_per_core: float,
    span: float,
) -> float:
    """Coarse platform energy of a queue-backend run (J).

    Alive capacity draws idle power for the whole observation span
    (failed cores draw nothing — the capacity step function already
    excludes them) and every busy core-second adds the average
    peak-minus-idle delta.  This is deliberately coarser than the
    middleware backend's per-node wattmeter model: the queue family
    compares *ordering and packing* decisions on one aggregated
    capacity, so per-node power attribution does not exist.

    >>> schedule = QueueSchedule(
    ...     policy_name="FCFS", capacity=4, records=(), slices=(),
    ...     capacity_steps=((0.0, 4),), busy_core_seconds=10.0,
    ...     makespan=5.0, horizon=None)
    >>> queue_energy(schedule, idle_power_per_core=2.0,
    ...              busy_power_delta_per_core=3.0, span=5.0)
    70.0
    """
    idle_core_seconds = 0.0
    steps = schedule.capacity_steps
    for index, (time, cores) in enumerate(steps):
        end = steps[index + 1][0] if index + 1 < len(steps) else span
        end = min(end, span)
        if end > time:
            idle_core_seconds += cores * (end - time)
    return (
        idle_power_per_core * idle_core_seconds
        + busy_power_delta_per_core * schedule.busy_core_seconds
    )


def queue_metrics(schedule: QueueSchedule, *, total_energy: float) -> dict[str, float]:
    """The flat metric summary of a queue-backend run.

    ``task_count`` counts completed jobs so ``greenperf`` (energy per
    completed job) is comparable across the policy families; the
    outcome partition (submitted = completed + failed + queued +
    running) is carried in full so conservation is visible in every
    sweep row.
    """
    counts = schedule.counts
    completed = float(counts["completed"])
    return {
        "makespan": schedule.makespan,
        "total_energy": total_energy,
        "task_count": completed,
        "mean_wait": schedule.mean_wait,
        "greenperf": greenperf_metric(total_energy, completed),
        "submitted": float(counts["submitted"]),
        "failed_tasks": float(counts["failed"]),
        "queued_tasks": float(counts["queued"]),
        "running_tasks": float(counts["running"]),
    }


def point_metrics(point: PointSummary) -> dict[str, float]:
    """The flat metric summary of a point-study run.

    Matches the historical heterogeneity-family sweep metrics exactly.
    No "events" metric: the closed-loop study runs without the event
    engine, and a fabricated count would pollute the profile report's
    events/sec aggregate.
    """
    task_count = float(sum(point.tasks_per_type.values()))
    return {
        "makespan": point.makespan,
        "total_energy": point.total_energy,
        "task_count": task_count,
        "mean_energy_per_task": point.mean_energy_per_task,
        "mean_completion_time": point.mean_completion_time,
        "greenperf": greenperf_metric(point.total_energy, task_count),
    }
