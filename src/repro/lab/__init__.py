"""repro.lab — one composable assembly path for every experiment.

The paper's system is one middleware (DIET hierarchy + green plug-in
scheduler + adaptive provisioning) observed through different
experiments.  This package is the layer that makes that literal in code:
a :class:`LabSession` is built from orthogonal components — platform
source, workload source (synthetic generator or ingested trace),
scheduling policy, optional provisioning, optional event timeline,
energy/trace modes — validates the combination once, assembles
hierarchy + driver + scenario application in one place, and returns a
uniform :class:`LabResult` that each experiment family post-processes
into its figures.

Modules
-------
``components``
    The typed axes: :class:`PlatformSource`, :class:`WorkloadSource`,
    :class:`PolicySource`, :class:`ProvisioningSource`,
    :func:`resolve_timeline`.
``session``
    :class:`LabSession` — validation and the two execution backends
    (full middleware stack; engine-less single-task point study).
``observe``
    :class:`LabResult` plus the shared metric/figure extraction.
``compat``
    :func:`session_for_spec` / :func:`execute_spec` — the declarative
    :class:`~repro.runner.spec.ScenarioSpec` surface, kept resolving
    exactly as before the lab refactor.
"""

from repro.lab.components import (
    LabError,
    PlatformSource,
    PolicySource,
    ProvisioningSource,
    ServeSource,
    WorkloadSource,
    resolve_timeline,
)
from repro.lab.observe import LabResult, PointSummary
from repro.lab.session import LabSession

__all__ = [
    "LabError",
    "LabResult",
    "LabSession",
    "PlatformSource",
    "PointSummary",
    "PolicySource",
    "ProvisioningSource",
    "ServeSource",
    "WorkloadSource",
    "resolve_timeline",
]
