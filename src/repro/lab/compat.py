"""Thin wrappers keeping the pre-lab entry points on the lab assembly path.

Two surfaces meet here:

* the **declarative** one — :func:`session_for_spec` resolves a frozen
  :class:`~repro.runner.spec.ScenarioSpec` (preset names, policy, trace/
  timeline paths) into a runnable :class:`~repro.lab.session.LabSession`,
  and :func:`execute_spec` is the sweep executor's unit of work;
* the **family-specific** one — the experiment modules
  (:mod:`repro.experiments.placement`, :mod:`~repro.experiments.adaptive`,
  :mod:`~repro.experiments.greenperf_eval`,
  :mod:`~repro.experiments.queue_family`) each expose a
  ``*_session(...)`` builder; this module dispatches to them so that the
  historical preset vocabulary keeps resolving exactly as before.

Since the lab refactor, ``trace`` and ``timeline`` are legal on *every*
family — the validation kept here is only the honesty check on spec
fields a family genuinely ignores (a seed on a deterministic policy, a
preference outside GREEN_SCORE), because every field participates in the
content hash and a swept-but-ignored field would cache identical
simulations under distinct labels.

Experiment modules are imported lazily inside the dispatch functions so
the lab package stays import-light and cycle-free.
"""

from __future__ import annotations

from repro.lab.session import LabSession
from repro.runner.spec import ScenarioSpec
from repro.runner.store import ScenarioResult


def reject_unused(spec: ScenarioSpec, **unused: object) -> None:
    """Refuse spec fields the experiment family would silently ignore.

    Every field participates in the content hash, so a sweep over a field
    the dispatcher ignores would run identical simulations under distinct
    labels (and cache them as distinct entries).  Failing loudly keeps
    sweep axes honest.
    """
    for name, default in unused.items():
        if getattr(spec, name) != default:
            raise ValueError(
                f"{spec.experiment} scenarios do not use {name!r} "
                f"(got {getattr(spec, name)!r}); drop it from the sweep axes"
            )


def _placement_session(spec: ScenarioSpec) -> LabSession:
    from repro.experiments.placement import placement_session
    from repro.experiments.presets import placement_config_for

    if spec.policy != "GREEN_SCORE":
        reject_unused(spec, preference=0.0)
    if spec.policy != "RANDOM":
        reject_unused(spec, seed=0)
    config = placement_config_for(
        platform=spec.platform,
        workload=spec.workload,
        seed=spec.seed,
        trace=spec.trace,
        overrides=dict(spec.overrides),
    )
    policy_kwargs = {}
    if spec.policy == "GREEN_SCORE":
        policy_kwargs["default_preference"] = spec.preference
    # Sweep workers skip per-task trace recording: nothing in the sweep
    # path reads it, and million-task replays would allocate four trace
    # events per task for nothing.
    return placement_session(
        spec.policy,
        config,
        trace_level="off",
        timeline=spec.timeline,
        horizon=spec.horizon,
        **policy_kwargs,
    )


def _heterogeneity_session(spec: ScenarioSpec) -> LabSession:
    from repro.experiments.greenperf_eval import (
        heterogeneity_params_for,
        heterogeneity_session,
    )

    reject_unused(spec, preference=0.0, horizon=None)
    if spec.policy != "RANDOM":
        reject_unused(spec, seed=0)
    if not spec.platform.startswith("types"):
        raise ValueError(
            f"heterogeneity platforms are 'types2'..'types4', got {spec.platform!r}"
        )
    kinds = int(spec.platform.removeprefix("types"))
    params = heterogeneity_params_for(spec.workload, overrides=dict(spec.overrides))
    return heterogeneity_session(
        spec.policy,
        kinds,
        seed=spec.seed,
        trace=spec.trace,
        timeline=spec.timeline,
        **params,
    )


def _adaptive_session(spec: ScenarioSpec) -> LabSession:
    from repro.experiments.adaptive import adaptive_config_for, adaptive_session

    # The Figure 9 scenario always schedules with GreenPerf and has no
    # stochastic component (generated fault timelines are seeded at
    # generation time, so a timeline file is deterministic content too).
    reject_unused(spec, policy="GREENPERF", preference=0.0, seed=0)
    if spec.trace is not None and spec.horizon is None:
        raise ValueError(
            "adaptive trace replay needs an observation horizon: the planner "
            "re-checks forever; add horizon=<seconds> to the spec"
        )
    timeline = None
    if spec.timeline is not None:
        from repro.scenario.io import load_timeline

        timeline = load_timeline(spec.timeline)
    config = adaptive_config_for(
        platform=spec.platform,
        workload=spec.workload,
        horizon=spec.horizon,
        timeline=timeline,
        trace=spec.trace,
        overrides=dict(spec.overrides),
    )
    return adaptive_session(config, trace_level="off")


def _queue_session(spec: ScenarioSpec) -> LabSession:
    from repro.experiments.presets import placement_config_for
    from repro.experiments.queue_family import queue_session

    # Queue policies are deterministic and preference-free; a seed or
    # preference axis would sweep identical schedules under new labels.
    reject_unused(spec, preference=0.0, seed=0)
    overrides = dict(spec.overrides)
    queue_cores = overrides.pop("queue_cores", None)
    if queue_cores is not None:
        queue_cores = int(queue_cores)
    config = placement_config_for(
        platform=spec.platform,
        workload=spec.workload,
        trace=spec.trace,
        overrides=overrides,
    )
    return queue_session(
        spec.policy,
        config,
        timeline=spec.timeline,
        horizon=spec.horizon,
        queue_cores=queue_cores,
    )


_FAMILY_SESSIONS = {
    "placement": _placement_session,
    "heterogeneity": _heterogeneity_session,
    "adaptive": _adaptive_session,
    "queue": _queue_session,
}


def session_for_spec(spec: ScenarioSpec) -> LabSession:
    """Resolve a declarative scenario spec into a runnable lab session.

    The session is validated (component combination checked once) before
    it is returned, so callers can rely on :class:`ValueError` surfacing
    here rather than mid-run.
    """
    try:
        builder = _FAMILY_SESSIONS[spec.experiment]
    except KeyError:
        raise ValueError(f"unknown experiment family {spec.experiment!r}") from None
    return builder(spec).validate()


def execute_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario spec through the lab and wrap its flat summary.

    This is the sweep executor's unit of work: the uniform
    :class:`~repro.lab.observe.LabResult` metrics/detail mappings are
    exactly the historical per-family sweep payloads, so stores written
    before the lab refactor keep serving cache hits byte-identically.
    """
    result = session_for_spec(spec).run()
    return ScenarioResult(
        spec=spec, metrics=dict(result.metrics), detail=dict(result.detail)
    )
