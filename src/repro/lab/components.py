"""Typed, orthogonal axes of a :class:`~repro.lab.session.LabSession`.

The paper's system is *one* middleware observed through different
experiments; a lab session therefore decomposes an experiment into
independent components instead of hand-wiring a platform, a workload, a
policy and an event scenario per experiment family:

* :class:`PlatformSource` — what infrastructure the middleware runs on
  (the Table I clusters, or the single-task server types of the
  heterogeneity study);
* :class:`WorkloadSource` — where requests come from (a synthetic
  generator, a replayed trace file, or a closed-loop client);
* :class:`PolicySource` — the plug-in scheduler under test;
* :class:`ProvisioningSource` — the optional adaptive
  :class:`~repro.core.provisioning.ProvisioningPlanner`;
* :class:`ServeSource` — admission quotas and socket parameters when a
  session is opened as a live placement service (:mod:`repro.serve`);
* :func:`resolve_timeline` — the optional declarative
  :class:`~repro.scenario.events.EventTimeline` (tariffs, thermal
  excursions, node crashes, workload bursts).

Each component is a frozen value object that knows how to *build* its
piece of the simulation; :class:`~repro.lab.session.LabSession` validates
the combination once and assembles everything in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Union

from repro.core.policies import policy_by_name
from repro.core.provisioning import ProvisioningConfig, ProvisioningPlanner
from repro.core.rules import AdministratorRules
from repro.infrastructure.node import NodeSpec
from repro.infrastructure.platform import (
    Platform,
    grid5000_placement_platform,
    orion_spec,
    simulated_cluster_specs,
    taurus_spec,
)
from repro.middleware.plugin_scheduler import PluginScheduler
from repro.policy.queue.policies import QUEUE_POLICY_NAMES
from repro.scenario.events import EventTimeline
from repro.simulation.task import Task
from repro.util.validation import ensure_positive
from repro.workload.generator import WorkloadGenerator


class LabError(ValueError):
    """An invalid component combination or component parameter."""


# -- platform ---------------------------------------------------------------------------

#: Default per-task cost of the closed-loop capacity client (the adaptive
#: experiment's task size).
CAPACITY_TASK_FLOP = 6.9e11


def server_type_specs(kinds: int) -> tuple[NodeSpec, ...]:
    """The single-task server types of the heterogeneity study.

    ``kinds=2`` uses the Orion and Taurus types of Table I; ``kinds=3``
    adds the simulated Sim1 type and ``kinds=4`` the Sim2 type of
    Table III.

    >>> [spec.cluster for spec in server_type_specs(4)]
    ['orion', 'taurus', 'sim1', 'sim2']
    """
    if kinds not in (2, 3, 4):
        raise LabError(f"kinds must be 2, 3 or 4, got {kinds}")
    specs = [orion_spec(), taurus_spec()]
    sims = simulated_cluster_specs()
    if kinds >= 3:
        specs.append(sims["sim1"])
    if kinds == 4:
        specs.append(sims["sim2"])
    return tuple(specs)


@dataclass(frozen=True)
class PlatformSource:
    """The infrastructure a session runs on.

    Two kinds cover the paper's evaluation:

    * ``"table1"`` — the Grid'5000 placement platform of Table I
      (Orion + Taurus + Sagittaire), ``nodes_per_cluster`` nodes each;
    * ``"server-types"`` — ``server_kinds`` single-task server types ×
      ``servers_per_type`` servers, the closed-loop heterogeneity study
      of Section IV-B.

    >>> PlatformSource.table1(1).build_platform().total_cores > 0
    True
    >>> len(PlatformSource.server_types(2, servers_per_type=3).server_specs())
    2
    """

    kind: str = "table1"
    nodes_per_cluster: int = 4
    server_kinds: int = 2
    servers_per_type: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("table1", "server-types"):
            raise LabError(
                f"platform kind must be 'table1' or 'server-types', got {self.kind!r}"
            )
        if self.nodes_per_cluster < 1:
            raise LabError(
                f"nodes_per_cluster must be >= 1, got {self.nodes_per_cluster}"
            )
        if self.servers_per_type < 1:
            raise LabError(
                f"servers_per_type must be >= 1, got {self.servers_per_type}"
            )

    @classmethod
    def table1(cls, nodes_per_cluster: int = 4) -> "PlatformSource":
        """The Table I platform with ``nodes_per_cluster`` nodes per cluster."""
        return cls(kind="table1", nodes_per_cluster=nodes_per_cluster)

    @classmethod
    def server_types(cls, kinds: int, *, servers_per_type: int = 2) -> "PlatformSource":
        """``kinds`` single-task server types, ``servers_per_type`` each."""
        server_type_specs(kinds)  # validate early
        return cls(
            kind="server-types", server_kinds=kinds, servers_per_type=servers_per_type
        )

    def build_platform(self) -> Platform:
        """The middleware-backend :class:`Platform` (``"table1"`` kind only)."""
        if self.kind != "table1":
            raise LabError(
                "server-types platforms run the closed-loop point study and "
                "do not build a middleware Platform"
            )
        return grid5000_placement_platform(nodes_per_cluster=self.nodes_per_cluster)

    def server_specs(self) -> tuple[NodeSpec, ...]:
        """The server-type specs (``"server-types"`` kind only)."""
        if self.kind != "server-types":
            raise LabError("table1 platforms have no single-task server specs")
        return server_type_specs(self.server_kinds)


# -- workload ---------------------------------------------------------------------------

#: A generator, or a factory sized by the platform's total core count.
GeneratorLike = Union[WorkloadGenerator, Callable[[int], WorkloadGenerator]]


@dataclass(frozen=True)
class WorkloadSource:
    """Where a session's requests come from.

    Five kinds:

    * ``"generator"`` — a synthetic :class:`WorkloadGenerator` (or a
      factory called with the platform's total core count, which is how
      the paper sizes its 10-requests-per-core placement workload);
    * ``"trace"`` — a replayed trace file (CSV, or a raw SWF log mapped
      with the default :class:`~repro.workload.ingest.SWFTraceMap`);
    * ``"capacity"`` — the adaptive experiment's closed-loop client: a
      continuous flow topping in-flight requests up to the capacity of
      the current candidate nodes (requires provisioning);
    * ``"point-load"`` — the heterogeneity study's closed loop:
      ``clients`` clients each keeping one request in flight for
      ``tasks_per_client`` tasks;
    * ``"served"`` — requests arrive over the wire: the session is
      opened as a live placement service
      (:meth:`~repro.lab.session.LabSession.open_service`) instead of
      being run to completion.
    """

    kind: str = "generator"
    generator: GeneratorLike | None = None
    trace_path: str | None = None
    task_flop: float = CAPACITY_TASK_FLOP
    client_tick: float = 60.0
    client: str = "adaptive-client"
    clients: int = 2
    tasks_per_client: int = 50

    def __post_init__(self) -> None:
        if self.kind not in ("generator", "trace", "capacity", "point-load", "served"):
            raise LabError(f"unknown workload kind {self.kind!r}")
        if self.kind == "generator" and self.generator is None:
            raise LabError("generator workloads need a generator= or factory")
        if self.kind == "trace" and not self.trace_path:
            raise LabError("trace workloads need a trace_path")
        ensure_positive(self.task_flop, "task_flop")
        ensure_positive(self.client_tick, "client_tick")
        if self.clients < 1:
            raise LabError(f"clients must be >= 1, got {self.clients}")
        if self.tasks_per_client < 1:
            raise LabError(
                f"tasks_per_client must be >= 1, got {self.tasks_per_client}"
            )

    @classmethod
    def from_generator(cls, generator: GeneratorLike) -> "WorkloadSource":
        """A synthetic workload (instance, or a factory of the core count)."""
        return cls(kind="generator", generator=generator)

    @classmethod
    def from_trace(cls, path: str | Path) -> "WorkloadSource":
        """Replay the trace file at ``path`` (CSV, or ``.swf`` raw log)."""
        return cls(kind="trace", trace_path=str(path))

    @classmethod
    def capacity(
        cls,
        *,
        task_flop: float = CAPACITY_TASK_FLOP,
        client_tick: float = 60.0,
        client: str = "adaptive-client",
    ) -> "WorkloadSource":
        """The adaptive closed-loop client (provisioning required)."""
        return cls(
            kind="capacity", task_flop=task_flop, client_tick=client_tick, client=client
        )

    @classmethod
    def point_load(
        cls, *, clients: int = 2, tasks_per_client: int = 50, task_flop: float = 5.0e10
    ) -> "WorkloadSource":
        """The heterogeneity study's one-request-in-flight closed loop."""
        return cls(
            kind="point-load",
            clients=clients,
            tasks_per_client=tasks_per_client,
            task_flop=task_flop,
        )

    @classmethod
    def served(cls) -> "WorkloadSource":
        """Requests arrive over the wire (open the session as a service)."""
        return cls(kind="served")

    @property
    def open_loop(self) -> bool:
        """Whether the workload is a pre-computed task stream."""
        return self.kind in ("generator", "trace")

    def resolve_tasks(self, total_cores: int = 0) -> tuple[Task, ...]:
        """Materialise an open-loop workload as a sorted task tuple."""
        if self.kind == "trace":
            from repro.workload.traces import TraceWorkload

            return tuple(TraceWorkload.from_file(self.trace_path).generate())
        if self.kind != "generator":
            raise LabError(f"{self.kind} workloads have no pre-computed task stream")
        generator = self.generator
        if not isinstance(generator, WorkloadGenerator):
            generator = generator(total_cores)
        return tuple(generator.generate())


# -- policy -----------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicySource:
    """The scheduling policy under test.

    ``seed`` is forwarded to stochastic policies (RANDOM) and
    ``preference`` to the GREEN_SCORE default user preference; leave them
    ``None`` for policies that do not take them.  ``options`` carries any
    further constructor keywords.

    ``family`` selects how the policy executes: ``"plugin"`` runs it as
    a per-request plug-in scheduler (the GreenPerf family, or the
    placement adapter of a queue policy), ``"queue"`` runs it on the
    batch queue backend of :class:`~repro.lab.session.LabSession`
    (backfill, reservations, fair share — :mod:`repro.policy.queue`).
    The default ``"auto"`` resolves by name: queue-family names get the
    queue backend, everything else the plug-in path.

    >>> PolicySource("power").build().name
    'POWER'
    >>> PolicySource("easy").resolved_family
    'queue'
    >>> PolicySource("easy", family="plugin").resolved_family
    'plugin'
    """

    name: str = "POWER"
    seed: int | None = None
    preference: float | None = None
    options: tuple[tuple[str, object], ...] = ()
    family: str = "auto"

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise LabError("policy name must be non-empty")
        object.__setattr__(self, "name", self.name.strip().upper())
        if not isinstance(self.options, tuple):
            object.__setattr__(self, "options", tuple(dict(self.options).items()))
        if self.family not in ("auto", "plugin", "queue"):
            raise LabError(
                f"policy family must be 'auto', 'plugin' or 'queue', "
                f"got {self.family!r}"
            )
        if self.family == "queue" and self.name not in QUEUE_POLICY_NAMES:
            raise LabError(
                f"{self.name} is not a queue-family policy; "
                f"queue names are {QUEUE_POLICY_NAMES}"
            )

    @property
    def resolved_family(self) -> str:
        """``"queue"`` or ``"plugin"`` after resolving ``"auto"`` by name."""
        if self.family != "auto":
            return self.family
        return "queue" if self.name in QUEUE_POLICY_NAMES else "plugin"

    def build(self) -> PluginScheduler:
        """Instantiate the per-request plug-in form of the policy.

        Queue-family names resolve to their placement adapter
        (:class:`~repro.middleware.queue_adapter.QueuePlacementAdapter`);
        the queue backend builds the batch form with
        :func:`~repro.policy.queue.policies.queue_policy_by_name`
        instead of calling this.
        """
        kwargs: dict[str, object] = dict(self.options)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        if self.preference is not None:
            kwargs["default_preference"] = self.preference
        return policy_by_name(self.name, **kwargs)


# -- provisioning -----------------------------------------------------------------------


@dataclass(frozen=True)
class ProvisioningSource:
    """The optional adaptive provisioning axis (Section III-C).

    Building a session with a provisioning source installs a
    :class:`ProvisioningPlanner` driven by the paper's administrator
    rules: periodic status checks against the timeline-derived
    electricity/thermal schedules, candidate ramping in GreenPerf order,
    and optional node power management.
    """

    check_period: float = 600.0
    lookahead: float = 1200.0
    ramp_up_step: int = 2
    ramp_down_step: int = 4
    manage_power: bool = True
    first_check_at: float = 0.0

    def config(self) -> ProvisioningConfig:
        """The planner configuration this source describes."""
        return ProvisioningConfig(
            check_period=self.check_period,
            lookahead=self.lookahead,
            ramp_up_step=self.ramp_up_step,
            ramp_down_step=self.ramp_down_step,
            manage_power=self.manage_power,
        )

    def build(
        self,
        *,
        platform,
        master,
        electricity,
        thermal,
        seds,
        engine,
        trace,
    ) -> ProvisioningPlanner:
        """Create the planner over an assembled middleware stack."""
        return ProvisioningPlanner(
            platform,
            master,
            AdministratorRules.paper_defaults(),
            electricity,
            thermal,
            seds=seds,
            engine=engine,
            trace=trace,
            config=self.config(),
        )


# -- serving ----------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeSource:
    """The serving axis: how a ``"served"`` session faces its clients.

    Pure configuration — the daemon itself lives in :mod:`repro.serve`
    (imported lazily by :meth:`~repro.lab.session.LabSession.open_service`,
    so batch experiments never pay for the serving layer).

    ``quota_rate`` tokens per virtual second refill each tenant's bucket
    (capacity ``quota_burst``); ``math.inf`` disables the quota gate.
    ``queue_limit`` bounds the admitted-but-unplaced backlog (``0``
    disables shedding).  ``batch_window`` adds a fixed accumulation
    delay (wall seconds) before each micro-batch is scored.
    """

    quota_rate: float = math.inf
    quota_burst: float = 64.0
    queue_limit: int = 0
    host: str = "127.0.0.1"
    port: int = 0
    batch_window: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_limit < 0:
            raise LabError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.batch_window < 0:
            raise LabError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.quota_burst <= 0:
            raise LabError(f"quota_burst must be positive, got {self.quota_burst}")
        if self.quota_rate <= 0:
            raise LabError(f"quota_rate must be positive, got {self.quota_rate}")


# -- timeline ---------------------------------------------------------------------------

TimelineLike = Union[EventTimeline, str, Path, None]


def resolve_timeline(source: TimelineLike) -> EventTimeline | None:
    """Resolve a timeline component: ``None``, an instance, or a file path.

    >>> resolve_timeline(None) is None
    True
    >>> resolve_timeline(EventTimeline()) == EventTimeline()
    True
    """
    if source is None or isinstance(source, EventTimeline):
        return source
    from repro.scenario.io import load_timeline

    return load_timeline(source)
